//! Loss-tolerant datagram transport: MTU fragmentation + ARQ over UDP.
//!
//! The paper's edge swarm talks over shared-medium WiFi (§IV-A measures
//! 62.24 Mbps / 8.83 ms for 64 B transfers), where frames are lost,
//! duplicated, and reordered. The TCP transport sidesteps that by
//! assuming a reliable stream; this module meets it head on:
//!
//! - a [`DatagramLink`] moves *unreliable* datagrams — a real
//!   [`UdpLink`] over `std::net::UdpSocket`, an in-process
//!   [`datagram_channel_pair`] for tests, or a
//!   [`FaultyTransport`] wrapper injecting
//!   seeded drop / duplicate / reorder / delay faults below the
//!   reliability layer;
//! - [`UdpTransport`] turns any such link into a reliable, ordered
//!   [`Transport`]: frames are split into MTU-sized `DATA` datagrams
//!   carrying `(frame seq, fragment index, fragment count)`, each
//!   acknowledged individually; unacked fragments retransmit on a
//!   timer, receivers deduplicate and reassemble, and frames are
//!   delivered strictly in sequence order.
//!
//! Because the ARQ layer reconstructs the exact frame bytes the codec
//! produced, everything above it — byte accounting, protocol sessions,
//! the determinism contract — is untouched by loss: a UDP cluster run
//! under 20 % injected loss is bit-identical to a serial run
//! (`tests/lossy_equivalence.rs`). What loss *does* cost is measured:
//! every retransmitted or duplicate-received datagram lands in
//! [`LinkStats`], which the runtime folds into the
//! [`CommLedger`](clan_netsim::CommLedger)'s `retrans_wire_bytes`
//! column.
//!
//! Liveness: a peer that goes silent never hangs the runtime. If no
//! datagram at all arrives for [`UdpConfig::idle_timeout_s`], `recv`
//! surfaces a typed [`ClanError::Timeout`]. Retransmission is paced by
//! [`UdpConfig::retransmit_interval_s`] and performed while waiting, so
//! a lost fragment costs roughly one interval, not a round trip per
//! datagram.

use super::{Transport, MAX_FRAME_BYTES};
use crate::error::{ClanError, FrameError};
use crate::transport::faults::{FaultConfig, FaultyTransport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::net::{ToSocketAddrs, UdpSocket};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Magic prefix of every CLAN datagram (distinct from the `CLAN` frame
/// magic, which appears only inside reassembled frames).
pub const DATAGRAM_MAGIC: [u8; 4] = *b"CLDG";
/// Bytes of header on a `DATA` datagram (magic, type, seq, index, count).
pub const DATA_HEADER_BYTES: usize = 4 + 1 + 8 + 4 + 4;
/// Bytes of an `ACK` datagram (magic, type, seq, index).
pub const ACK_BYTES: usize = 4 + 1 + 8 + 4;
/// Frames more than this far ahead of the delivery cursor are ignored:
/// the request/response protocol never has more than two frames in
/// flight per direction, so a larger gap is garbage or hostility.
const SEQ_WINDOW: u64 = 64;

const TYPE_DATA: u8 = 1;
const TYPE_ACK: u8 = 2;

/// An unreliable datagram pipe: sends may be lost, duplicated, or
/// reordered in transit; each receive yields one whole datagram.
///
/// This is the layer fault injection targets
/// ([`FaultyTransport`] wraps any link) and the
/// layer [`UdpTransport`] builds reliability on top of.
pub trait DatagramLink: Send {
    /// Sends one datagram (best-effort; the medium may drop it).
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] only on a *local* failure (socket gone);
    /// loss in transit is silent, as on a real wire.
    fn send(&mut self, datagram: &[u8]) -> Result<(), ClanError>;

    /// Receives one datagram, waiting up to `timeout`. `Ok(None)` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] on a local socket failure.
    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ClanError>;

    /// Human-readable peer label for error messages.
    fn peer(&self) -> String;
}

// ----------------------------------------------------------------------
// Real UDP sockets
// ----------------------------------------------------------------------

/// A [`DatagramLink`] over one connected `std::net::UdpSocket`.
#[derive(Debug)]
pub struct UdpLink {
    socket: UdpSocket,
    peer: String,
}

impl UdpLink {
    /// Binds an ephemeral local port (matching the peer's address
    /// family, so IPv6 agents work like they do over TCP) and connects
    /// it to `addr`.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the address does not resolve or
    /// binding/connecting fails.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(addr: A) -> Result<UdpLink, ClanError> {
        let peer = addr.to_string();
        let err = |what: &str, e: std::io::Error| ClanError::Transport {
            peer: peer.clone(),
            reason: format!("{what}: {e}"),
        };
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| err("udp resolve", e))?
            .next()
            .ok_or_else(|| ClanError::Transport {
                peer: peer.clone(),
                reason: "udp resolve: no addresses".into(),
            })?;
        let local: std::net::SocketAddr = if resolved.is_ipv6() {
            // clan-lint: allow(L1, reason="constant wildcard literal parses by construction; not wire-derived")
            "[::]:0".parse().expect("valid v6 wildcard")
        } else {
            // clan-lint: allow(L1, reason="constant wildcard literal parses by construction; not wire-derived")
            "0.0.0.0:0".parse().expect("valid v4 wildcard")
        };
        let socket = UdpSocket::bind(local).map_err(|e| err("udp bind", e))?;
        socket
            .connect(resolved)
            .map_err(|e| err("udp connect", e))?;
        Ok(UdpLink { socket, peer })
    }

    /// Wraps an already-connected socket (the agent side does this after
    /// learning the coordinator's address from its first datagram).
    pub fn from_socket(socket: UdpSocket, peer: String) -> UdpLink {
        UdpLink { socket, peer }
    }
}

impl DatagramLink for UdpLink {
    fn send(&mut self, datagram: &[u8]) -> Result<(), ClanError> {
        self.socket
            .send(datagram)
            .map(|_| ())
            .map_err(|e| ClanError::Transport {
                peer: self.peer.clone(),
                reason: format!("udp send: {e}"),
            })
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ClanError> {
        // A zero read-timeout means "block forever" to the OS; clamp up.
        let timeout = timeout.max(Duration::from_millis(1));
        self.socket
            .set_read_timeout(Some(timeout))
            .map_err(|e| ClanError::Transport {
                peer: self.peer.clone(),
                reason: format!("udp set timeout: {e}"),
            })?;
        let mut buf = [0u8; 65_535];
        match self.socket.recv(&mut buf) {
            // clan-lint: allow(L1, reason="n <= buf.len() by the recv(2) contract; a datagram never exceeds the 64 KiB stack buffer")
            Ok(n) => Ok(Some(buf[..n].to_vec())),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            // A previous send to a vanished peer can surface here as
            // ECONNREFUSED; treat it as silence (the idle deadline is
            // the liveness authority, and the peer may still come up).
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(ClanError::Transport {
                peer: self.peer.clone(),
                reason: format!("udp recv: {e}"),
            }),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// ----------------------------------------------------------------------
// In-process datagram channels (tests, benches)
// ----------------------------------------------------------------------

/// One endpoint of an in-process datagram pipe — same unreliable
/// *semantics* as UDP is allowed to have (no loss unless a
/// [`FaultyTransport`] injects it), useful for
/// deterministic fragmentation/ARQ tests without sockets.
#[derive(Debug)]
pub struct ChannelDatagramLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    label: String,
}

/// Creates a connected pair of in-process datagram links.
pub fn datagram_channel_pair() -> (ChannelDatagramLink, ChannelDatagramLink) {
    let (tx_ab, rx_ab) = channel();
    let (tx_ba, rx_ba) = channel();
    (
        ChannelDatagramLink {
            tx: tx_ab,
            rx: rx_ba,
            label: "dgram-channel:a".into(),
        },
        ChannelDatagramLink {
            tx: tx_ba,
            rx: rx_ab,
            label: "dgram-channel:b".into(),
        },
    )
}

impl DatagramLink for ChannelDatagramLink {
    fn send(&mut self, datagram: &[u8]) -> Result<(), ClanError> {
        // Datagram semantics: a send toward a vanished peer is a *lost
        // datagram*, not an error — exactly like UDP into the void. The
        // liveness deadline is the sole authority on a dead peer.
        let _ = self.tx.send(datagram.to_vec());
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ClanError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => Ok(Some(d)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                // Same datagram semantics: silence, not disconnection.
                // Sleep out the budget so the ARQ pump does not spin hot
                // while its idle deadline counts down.
                std::thread::sleep(timeout);
                Ok(None)
            }
        }
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

// ----------------------------------------------------------------------
// Datagram codec
// ----------------------------------------------------------------------

enum Datagram<'a> {
    Data {
        seq: u64,
        index: u32,
        count: u32,
        payload: &'a [u8],
    },
    Ack {
        seq: u64,
        index: u32,
    },
}

fn encode_data(seq: u64, index: u32, count: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(DATA_HEADER_BYTES + payload.len());
    out.extend_from_slice(&DATAGRAM_MAGIC);
    out.push(TYPE_DATA);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn encode_ack(seq: u64, index: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(ACK_BYTES);
    out.extend_from_slice(&DATAGRAM_MAGIC);
    out.push(TYPE_ACK);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&index.to_le_bytes());
    out
}

/// Splits `n` leading bytes off a slice, or `None` — the panic-free
/// cursor primitive the datagram decoder is built from.
fn take_bytes(buf: &[u8], n: usize) -> Option<(&[u8], &[u8])> {
    if buf.len() < n {
        return None;
    }
    Some(buf.split_at(n))
}

/// Reads a little-endian `u64` off the front of a slice.
fn take_u64(buf: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = take_bytes(buf, 8)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(head);
    Some((u64::from_le_bytes(a), rest))
}

/// Reads a little-endian `u32` off the front of a slice.
fn take_u32(buf: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = take_bytes(buf, 4)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(head);
    Some((u32::from_le_bytes(a), rest))
}

/// Decodes one datagram. `None` on malformation — a lossy medium can
/// corrupt anything, so garbage is dropped silently like a bad checksum,
/// never panicked on. Every read is bounds-checked through the `take_*`
/// cursors: no index into the wire bytes can panic.
fn decode_datagram(buf: &[u8]) -> Option<Datagram<'_>> {
    let (magic, rest) = take_bytes(buf, 4)?;
    if magic != DATAGRAM_MAGIC {
        return None;
    }
    let (ty, rest) = take_bytes(rest, 1)?;
    match ty[0] {
        TYPE_DATA => {
            let (seq, rest) = take_u64(rest)?;
            let (index, rest) = take_u32(rest)?;
            let (count, payload) = take_u32(rest)?;
            Some(Datagram::Data {
                seq,
                index,
                count,
                payload,
            })
        }
        TYPE_ACK => {
            let (seq, rest) = take_u64(rest)?;
            let (index, rest) = take_u32(rest)?;
            // ACKs are fixed-size: trailing bytes mean corruption.
            if !rest.is_empty() {
                return None;
            }
            Some(Datagram::Ack { seq, index })
        }
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Configuration + stats
// ----------------------------------------------------------------------

/// Tuning for a [`UdpTransport`] and optional fault injection for the
/// link beneath it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UdpConfig {
    /// Payload bytes per `DATA` datagram (the fragmentation unit).
    pub mtu: usize,
    /// Seconds between retransmissions of unacknowledged fragments.
    pub retransmit_interval_s: f64,
    /// Liveness deadline: a receive that hears *nothing* from the peer
    /// for this long surfaces [`ClanError::Timeout`]. Must exceed the
    /// longest silent compute phase between protocol messages.
    pub idle_timeout_s: f64,
    /// Seeded faults injected on this endpoint's link (drop / duplicate
    /// / reorder / delay); `None` leaves the medium alone.
    pub faults: Option<FaultConfig>,
}

impl Default for UdpConfig {
    /// 1200 B MTU (safely under typical 1500 B Ethernet/WiFi payloads),
    /// 25 ms retransmit pacing, 30 s liveness window, no faults.
    fn default() -> UdpConfig {
        UdpConfig {
            mtu: 1200,
            retransmit_interval_s: 0.025,
            idle_timeout_s: 30.0,
            faults: None,
        }
    }
}

impl UdpConfig {
    /// Sets the fragmentation MTU.
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero.
    pub fn with_mtu(mut self, mtu: usize) -> UdpConfig {
        assert!(mtu > 0, "mtu must be at least one byte");
        self.mtu = mtu;
        self
    }

    /// Sets the retransmit pacing.
    pub fn with_retransmit_interval_s(mut self, s: f64) -> UdpConfig {
        self.retransmit_interval_s = s;
        self
    }

    /// Sets the liveness deadline.
    pub fn with_idle_timeout_s(mut self, s: f64) -> UdpConfig {
        self.idle_timeout_s = s;
        self
    }

    /// Attaches injected faults.
    pub fn with_faults(mut self, faults: FaultConfig) -> UdpConfig {
        self.faults = Some(faults);
        self
    }

    /// Builds a reliable transport over a fresh UDP socket connected to
    /// `addr`, applying this config's faults (if any) with a per-link
    /// RNG stream derived for `link_index` — so every link of a cluster
    /// sees independent, reproducible loss.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the socket cannot be created.
    pub fn transport_to<A: ToSocketAddrs + std::fmt::Display>(
        &self,
        addr: A,
        link_index: usize,
    ) -> Result<Box<dyn Transport>, ClanError> {
        let link = UdpLink::connect(addr)?;
        Ok(match &self.faults {
            Some(f) => Box::new(UdpTransport::with_config(
                FaultyTransport::new(link, f.for_link(link_index)),
                self,
            )),
            None => Box::new(UdpTransport::with_config(link, self)),
        })
    }
}

/// Reliability overhead observed on one link: datagrams this endpoint
/// retransmitted and duplicates it received. On a clean medium both are
/// zero; under loss they measure what the paper's analytic WiFi model
/// does not charge.
///
/// Byte counters are **frame-payload bytes** (the 21 B per-datagram
/// header excluded) so they share units with the ledger's frame-level
/// `wire_bytes` accounting — `retrans_bytes / wire_bytes` is then
/// "fraction of useful frame traffic that had to be re-sent", not a
/// mix of raw-medium and frame units. (Neither column charges the
/// per-datagram/ack header overhead of the medium itself, just as the
/// stream transports' `wire_bytes` charges only the 4 B length prefix.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// `DATA` datagrams retransmitted by this endpoint.
    pub retrans_datagrams: u64,
    /// Frame-payload bytes of those retransmissions.
    pub retrans_bytes: u64,
    /// Duplicate `DATA` datagrams received (and discarded).
    pub dup_datagrams: u64,
    /// Frame-payload bytes of those duplicates.
    pub dup_bytes: u64,
}

impl LinkStats {
    /// Total overhead bytes attributable to loss recovery on this
    /// endpoint (retransmitted + duplicate-received).
    pub fn overhead_bytes(&self) -> u64 {
        self.retrans_bytes + self.dup_bytes
    }

    /// Folds another sample into this one.
    pub fn merge(&mut self, other: &LinkStats) {
        self.retrans_datagrams += other.retrans_datagrams;
        self.retrans_bytes += other.retrans_bytes;
        self.dup_datagrams += other.dup_datagrams;
        self.dup_bytes += other.dup_bytes;
    }
}

// ----------------------------------------------------------------------
// The reliable transport
// ----------------------------------------------------------------------

/// An outbound frame awaiting acknowledgment.
struct Outgoing {
    /// Encoded `DATA` datagrams, ready to retransmit verbatim.
    datagrams: Vec<Vec<u8>>,
    acked: Vec<bool>,
    pending: usize,
}

/// An inbound frame under reassembly.
struct Incoming {
    count: u32,
    frags: BTreeMap<u32, Vec<u8>>,
    bytes: u64,
}

impl Incoming {
    fn is_complete(&self) -> bool {
        self.frags.len() as u32 == self.count
    }

    fn assemble(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes as usize);
        for (_, frag) in self.frags {
            out.extend_from_slice(&frag);
        }
        out
    }
}

/// A reliable, ordered [`Transport`] over any [`DatagramLink`]:
/// fragmentation, selective acknowledgment, timer-paced retransmission,
/// receive-side deduplication and in-order reassembly.
///
/// Sends are asynchronous: `send_frame` transmits every fragment once
/// and returns; retransmission of anything the peer has not acked
/// happens while this endpoint waits in `recv_frame` (and in
/// [`drain`](Transport::drain), which `EdgeCluster::shutdown` uses to
/// push the final `Shutdown` through a lossy link). The
/// request/response shape of the cluster protocol guarantees every send
/// is followed by a receive, so nothing is ever stranded.
pub struct UdpTransport<L: DatagramLink = UdpLink> {
    link: L,
    mtu: usize,
    retransmit_interval: Duration,
    idle_timeout: Duration,
    next_tx: u64,
    next_rx: u64,
    outstanding: BTreeMap<u64, Outgoing>,
    partial: BTreeMap<u64, Incoming>,
    ready: VecDeque<Vec<u8>>,
    stats: LinkStats,
}

impl<L: DatagramLink> UdpTransport<L> {
    /// Wraps `link` with the default [`UdpConfig`] tuning.
    pub fn over(link: L) -> UdpTransport<L> {
        UdpTransport::with_config(link, &UdpConfig::default())
    }

    /// Wraps `link` with explicit tuning (the config's `faults` field is
    /// *not* applied here — wrap the link in a
    /// [`FaultyTransport`] yourself, or use
    /// [`UdpConfig::transport_to`]).
    pub fn with_config(link: L, cfg: &UdpConfig) -> UdpTransport<L> {
        assert!(cfg.mtu > 0, "mtu must be at least one byte");
        UdpTransport {
            link,
            mtu: cfg.mtu,
            retransmit_interval: Duration::from_secs_f64(cfg.retransmit_interval_s.max(0.001)),
            idle_timeout: Duration::from_secs_f64(cfg.idle_timeout_s.max(0.001)),
            next_tx: 0,
            next_rx: 0,
            outstanding: BTreeMap::new(),
            partial: BTreeMap::new(),
            ready: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    /// The wrapped link (e.g. to read a
    /// [`FaultyTransport`]'s injection counters).
    pub fn link(&self) -> &L {
        &self.link
    }

    /// Reliability overhead observed so far (without resetting; the
    /// [`Transport::take_link_stats`] impl resets).
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Handles one received datagram: ack bookkeeping, reassembly,
    /// dedup, in-order delivery into the ready queue.
    fn process(&mut self, buf: &[u8]) -> Result<(), ClanError> {
        match decode_datagram(buf) {
            None => {} // corrupt datagram: drop, like a failed checksum
            Some(Datagram::Ack { seq, index }) => {
                if let Some(out) = self.outstanding.get_mut(&seq) {
                    let i = index as usize;
                    if i < out.acked.len() && !out.acked[i] {
                        out.acked[i] = true;
                        out.pending -= 1;
                    }
                    if out.pending == 0 {
                        self.outstanding.remove(&seq);
                    }
                }
            }
            Some(Datagram::Data {
                seq,
                index,
                count,
                payload,
            }) => {
                // Acks are sent only for *accepted* fragments (and for
                // genuine duplicates of accepted ones). Acking before
                // validation would tell the sender a fragment we are
                // about to discard was delivered — it would never be
                // retransmitted and the frame could never complete.
                if seq < self.next_rx {
                    // Frame already delivered; the peer missed our acks.
                    self.link.send(&encode_ack(seq, index))?;
                    self.stats.dup_datagrams += 1;
                    self.stats.dup_bytes += payload.len() as u64;
                    return Ok(());
                }
                if seq >= self.next_rx + SEQ_WINDOW || count == 0 || index >= count {
                    return Ok(()); // garbage or far-future: ignore, no ack
                }
                if u64::from(count) > MAX_FRAME_BYTES {
                    // Even 1-byte fragments could not finish under the
                    // frame cap — typed rejection, not slow memory growth.
                    return Err(FrameError::Oversized {
                        announced: u64::from(count),
                        max: MAX_FRAME_BYTES,
                    }
                    .into());
                }
                if payload.is_empty() && count > 1 {
                    return Ok(()); // only a lone empty frame may be empty
                }
                let inc = self.partial.entry(seq).or_insert_with(|| Incoming {
                    count,
                    frags: BTreeMap::new(),
                    bytes: 0,
                });
                if inc.count != count {
                    // Conflicts with the count this frame was first seen
                    // with: corrupt or hostile. Unacked, so if *this*
                    // datagram was the truth its retransmissions keep
                    // arriving; worst case the frame stalls into a typed
                    // Timeout instead of silently "succeeding".
                    return Ok(());
                }
                if inc.frags.contains_key(&index) {
                    // Genuine duplicate of an accepted fragment: the
                    // sender missed our ack — re-ack so it stops.
                    self.link.send(&encode_ack(seq, index))?;
                    self.stats.dup_datagrams += 1;
                    self.stats.dup_bytes += payload.len() as u64;
                    return Ok(());
                }
                inc.bytes += payload.len() as u64;
                if inc.bytes > MAX_FRAME_BYTES {
                    return Err(FrameError::Oversized {
                        announced: inc.bytes,
                        max: MAX_FRAME_BYTES,
                    }
                    .into());
                }
                inc.frags.insert(index, payload.to_vec());
                self.link.send(&encode_ack(seq, index))?;
                // Promote every in-order complete frame. The
                // remove-after-check is written as a single `remove` +
                // re-insert-on-incomplete so there is no panic path
                // between the check and the take.
                while let Some(done) = self.partial.remove(&self.next_rx) {
                    if !done.is_complete() {
                        self.partial.insert(self.next_rx, done);
                        break;
                    }
                    self.ready.push_back(done.assemble());
                    self.next_rx += 1;
                }
            }
        }
        Ok(())
    }

    /// Retransmits every unacknowledged fragment of every outstanding
    /// frame, counting the overhead.
    fn retransmit(&mut self) -> Result<(), ClanError> {
        let UdpTransport {
            link,
            outstanding,
            stats,
            ..
        } = self;
        for out in outstanding.values() {
            for (i, d) in out.datagrams.iter().enumerate() {
                if !out.acked[i] {
                    link.send(d)?;
                    stats.retrans_datagrams += 1;
                    // Frame-payload bytes only (header excluded), so the
                    // ledger's retransmission column shares units with
                    // its frame-level `wire_bytes` accounting.
                    stats.retrans_bytes += (d.len() - DATA_HEADER_BYTES) as u64;
                }
            }
        }
        Ok(())
    }

    /// Waits for datagrams, retransmitting on the timer, until `until`
    /// says stop or the idle deadline trips.
    fn pump(&mut self, mut until: impl FnMut(&Self) -> bool) -> Result<(), ClanError> {
        let mut last_heard = Instant::now();
        let mut next_retx = Instant::now() + self.retransmit_interval;
        loop {
            if until(self) {
                return Ok(());
            }
            let now = Instant::now();
            let idle = now.duration_since(last_heard);
            if idle >= self.idle_timeout {
                return Err(ClanError::Timeout {
                    peer: self.link.peer(),
                    waited: idle,
                });
            }
            let wait = next_retx
                .saturating_duration_since(now)
                .min(self.idle_timeout - idle);
            if let Some(d) = self.link.recv(wait)? {
                last_heard = Instant::now();
                self.process(&d)?;
            }
            if Instant::now() >= next_retx {
                self.retransmit()?;
                next_retx = Instant::now() + self.retransmit_interval;
            }
        }
    }
}

impl<L: DatagramLink> Transport for UdpTransport<L> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClanError> {
        if frame.len() as u64 > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized {
                announced: frame.len() as u64,
                max: MAX_FRAME_BYTES,
            }
            .into());
        }
        let seq = self.next_tx;
        self.next_tx += 1;
        let count = frame.len().div_ceil(self.mtu).max(1);
        let mut datagrams = Vec::with_capacity(count);
        for (index, chunk) in frame
            .chunks(self.mtu)
            .chain(std::iter::repeat_n(&[][..], usize::from(frame.is_empty())))
            .enumerate()
        {
            datagrams.push(encode_data(seq, index as u32, count as u32, chunk));
        }
        for d in &datagrams {
            self.link.send(d)?;
        }
        self.outstanding.insert(
            seq,
            Outgoing {
                acked: vec![false; datagrams.len()],
                pending: datagrams.len(),
                datagrams,
            },
        );
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ClanError> {
        // `pump` enforces the link's idle_timeout, so this cannot hang
        // on a silent peer.
        self.pump(|t| !t.ready.is_empty())?;
        self.ready.pop_front().ok_or_else(|| ClanError::Transport {
            peer: self.link.peer(),
            reason: "pump returned without a ready frame".into(),
        })
    }

    fn peer(&self) -> String {
        format!("udp:{}", self.link.peer())
    }

    fn take_link_stats(&mut self) -> LinkStats {
        std::mem::take(&mut self.stats)
    }

    fn drain(&mut self, deadline: Duration) -> Result<(), ClanError> {
        let end = Instant::now() + deadline;
        // Temporarily shrink the idle window so a vanished peer cannot
        // stall shutdown past the caller's deadline.
        let saved = self.idle_timeout;
        self.idle_timeout = saved.min(deadline);
        let result = self.pump(|t| t.outstanding.is_empty() || Instant::now() >= end);
        self.idle_timeout = saved;
        result?;
        if self.outstanding.is_empty() {
            Ok(())
        } else {
            Err(ClanError::Timeout {
                peer: self.link.peer(),
                waited: deadline,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{recv_message, send_message, WireMessage};

    fn pair_with(
        cfg: &UdpConfig,
    ) -> (
        UdpTransport<ChannelDatagramLink>,
        UdpTransport<ChannelDatagramLink>,
    ) {
        let (a, b) = datagram_channel_pair();
        (
            UdpTransport::with_config(a, cfg),
            UdpTransport::with_config(b, cfg),
        )
    }

    fn fast_cfg() -> UdpConfig {
        UdpConfig::default()
            .with_retransmit_interval_s(0.005)
            .with_idle_timeout_s(1.0)
    }

    #[test]
    fn frames_round_trip_over_channel_datagrams() {
        let (mut a, mut b) = pair_with(&fast_cfg().with_mtu(16));
        let frame: Vec<u8> = (0..200u8).collect();
        a.send_frame(&frame).unwrap();
        assert_eq!(b.recv_frame().unwrap(), frame);
        // And back, multiple frames in order.
        b.send_frame(&[1, 2, 3]).unwrap();
        b.send_frame(&[]).unwrap();
        b.send_frame(&frame).unwrap();
        assert_eq!(a.recv_frame().unwrap(), vec![1, 2, 3]);
        assert_eq!(a.recv_frame().unwrap(), Vec::<u8>::new());
        assert_eq!(a.recv_frame().unwrap(), frame);
    }

    #[test]
    fn frames_round_trip_over_real_udp_sockets() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let cfg = fast_cfg();
        let cfg2 = cfg.clone();
        let join = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            let (_, peer) = server.peek_from(&mut buf).unwrap();
            server.connect(peer).unwrap();
            let mut t =
                UdpTransport::with_config(UdpLink::from_socket(server, peer.to_string()), &cfg2);
            let (msg, _) = recv_message(&mut t).unwrap();
            send_message(&mut t, &msg).unwrap();
        });
        let mut client = UdpTransport::with_config(UdpLink::connect(addr).unwrap(), &cfg);
        send_message(&mut client, &WireMessage::Shutdown).unwrap();
        let (echo, _) = recv_message(&mut client).unwrap();
        assert_eq!(echo, WireMessage::Shutdown);
        join.join().unwrap();
    }

    #[test]
    fn silent_peer_is_a_typed_timeout_not_a_hang() {
        // A bound socket that never answers.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = sink.local_addr().unwrap();
        let cfg = UdpConfig::default()
            .with_retransmit_interval_s(0.01)
            .with_idle_timeout_s(0.15);
        let mut t = UdpTransport::with_config(UdpLink::connect(addr).unwrap(), &cfg);
        t.send_frame(b"hello?").unwrap();
        let start = Instant::now();
        match t.recv_frame() {
            Err(ClanError::Timeout { waited, .. }) => {
                assert!(waited >= Duration::from_millis(140));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
        // The retransmit timer ran while waiting.
        assert!(t.stats().retrans_datagrams > 0);
    }

    #[test]
    fn oversized_frame_rejected_at_send() {
        let (a, _b) = datagram_channel_pair();
        let mut t = UdpTransport::over(a);
        // Fake an oversized frame without allocating 64 MiB: cap + 1 of
        // zero-length chunks is impossible, so use a length check probe.
        let huge = vec![0u8; (MAX_FRAME_BYTES + 1) as usize];
        assert!(matches!(
            t.send_frame(&huge),
            Err(ClanError::Frame(FrameError::Oversized { .. }))
        ));
    }

    #[test]
    fn hostile_fragment_count_is_typed_error_not_oom() {
        let (mut a, b) = datagram_channel_pair();
        let mut t = UdpTransport::with_config(b, &fast_cfg());
        // Announce more fragments than the frame cap allows.
        a.send(&encode_data(0, 0, u32::MAX, b"x")).unwrap();
        assert!(matches!(
            t.recv_frame(),
            Err(ClanError::Frame(FrameError::Oversized { .. }))
        ));
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let (mut a, b) = datagram_channel_pair();
        let mut t = UdpTransport::with_config(b, &fast_cfg());
        let d = encode_data(0, 0, 2, b"aaaa");
        let d2 = encode_data(0, 1, 2, b"bb");
        a.send(&d).unwrap();
        a.send(&d).unwrap(); // duplicate in flight
        a.send(&d2).unwrap();
        assert_eq!(t.recv_frame().unwrap(), b"aaaabb");
        assert_eq!(t.stats().dup_datagrams, 1);
        // Re-delivery of a fragment of a completed frame is also a
        // counted duplicate (and re-acked, not re-delivered).
        a.send(&d2).unwrap();
        t.idle_timeout = Duration::from_millis(50);
        assert!(matches!(t.recv_frame(), Err(ClanError::Timeout { .. })));
        assert_eq!(t.stats().dup_datagrams, 2);
    }

    #[test]
    fn reordered_fragments_reassemble_in_index_order() {
        let (mut a, b) = datagram_channel_pair();
        let mut t = UdpTransport::with_config(b, &fast_cfg());
        // Frame 0 fragments arrive backwards; frame 1 arrives first.
        a.send(&encode_data(1, 0, 1, b"second")).unwrap();
        a.send(&encode_data(0, 1, 2, b"st")).unwrap();
        a.send(&encode_data(0, 0, 2, b"fir")).unwrap();
        assert_eq!(t.recv_frame().unwrap(), b"first");
        assert_eq!(t.recv_frame().unwrap(), b"second");
    }

    #[test]
    fn acks_clear_outstanding_state() {
        let (mut a, mut b) = pair_with(&fast_cfg().with_mtu(8));
        a.send_frame(b"0123456789abcdef").unwrap();
        assert_eq!(a.outstanding.len(), 1);
        b.recv_frame().unwrap();
        // b acked both fragments; pumping a (via drain) clears them.
        a.drain(Duration::from_millis(500)).unwrap();
        assert!(a.outstanding.is_empty());
    }

    #[test]
    fn corrupt_datagrams_are_ignored() {
        let (mut a, b) = datagram_channel_pair();
        let mut t = UdpTransport::with_config(b, &fast_cfg());
        a.send(b"not a clan datagram").unwrap();
        a.send(&[]).unwrap();
        a.send(&encode_data(0, 0, 1, b"ok")).unwrap();
        assert_eq!(t.recv_frame().unwrap(), b"ok");
    }
}
