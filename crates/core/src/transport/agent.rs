//! The agent side of the cluster protocol: a session loop that serves
//! one coordinator, plus a TCP server for standalone agent processes
//! (`clan-cli agent --listen ADDR`).
//!
//! The same [`serve_session`] drives every agent, whether it lives in a
//! thread of the coordinator's process (channel or loopback-TCP
//! transport) or on another machine: the protocol — `Configure` once,
//! then `Evaluate`/`BuildChildren` request-response rounds until
//! `Shutdown` — is transport-invariant, and so is the work itself, which
//! is why a distributed run is bit-identical to a serial one.

use super::{recv_message, send_message, Transport, WireMessage};
use crate::error::ClanError;
use crate::evaluator::Evaluator;
use clan_neat::reproduction::make_child;
use clan_neat::{Genome, GenomeId};
use std::collections::BTreeMap;
use std::net::{TcpListener, ToSocketAddrs};

/// Serves one coordinator session over `transport` until `Shutdown` or
/// disconnect.
///
/// The first message must be `Configure`; the agent builds its
/// [`Evaluator`] from the received [`ClusterSpec`](super::ClusterSpec)
/// so there is no configuration to keep in sync between machines.
///
/// # Errors
///
/// [`ClanError::Protocol`] if the coordinator violates the session
/// protocol, plus any transport or frame error. A clean disconnect
/// after `Shutdown` is success.
pub fn serve_session(transport: &mut dyn Transport) -> Result<(), ClanError> {
    let spec = match recv_message(transport)?.0 {
        WireMessage::Configure(spec) => *spec,
        other => {
            return Err(ClanError::Protocol {
                peer: transport.peer(),
                reason: format!("expected Configure, got {}", message_name(&other)),
            })
        }
    };
    let mut evaluator = Evaluator::with_options(
        spec.workload,
        spec.mode,
        spec.episodes.max(1),
        1,
        spec.agent_engine_options(),
    );
    let cfg = spec.cfg;
    loop {
        let msg = match recv_message(transport) {
            Ok((msg, _)) => msg,
            // Coordinator gone: the session is over. Dying quietly (not
            // erroring) lets loopback clusters tear down in any order.
            // A datagram transport observes "gone" as a liveness timeout
            // rather than a disconnect — same treatment.
            Err(ClanError::Transport { .. }) | Err(ClanError::Timeout { .. }) => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            WireMessage::Evaluate {
                generation,
                master_seed,
                genomes,
            } => {
                let results = evaluator.evaluate_genomes(&genomes, &cfg, master_seed, generation);
                send_message(transport, &WireMessage::Fitness(results))?;
            }
            WireMessage::BuildChildren {
                generation,
                master_seed,
                specs,
                parents,
            } => {
                let lookup: BTreeMap<GenomeId, Genome> =
                    parents.into_iter().map(|g| (g.id(), g)).collect();
                let mut children = Vec::with_capacity(specs.len());
                for spec in &specs {
                    let pids = spec.parent_ids();
                    let p1 = lookup.get(&pids[0]).ok_or_else(|| ClanError::Protocol {
                        peer: transport.peer(),
                        reason: format!("spec references absent parent {}", pids[0]),
                    })?;
                    let p2 = match pids.get(1) {
                        Some(id) => Some(lookup.get(id).ok_or_else(|| ClanError::Protocol {
                            peer: transport.peer(),
                            reason: format!("spec references absent parent {id}"),
                        })?),
                        None => None,
                    };
                    children.push(make_child(&cfg, spec, (p1, p2), master_seed, generation));
                }
                send_message(transport, &WireMessage::Children(children))?;
            }
            WireMessage::Shutdown => return Ok(()),
            other => {
                return Err(ClanError::Protocol {
                    peer: transport.peer(),
                    reason: format!("unexpected {} mid-session", message_name(&other)),
                })
            }
        }
    }
}

fn message_name(msg: &WireMessage) -> &'static str {
    match msg {
        WireMessage::Configure(_) => "Configure",
        WireMessage::Evaluate { .. } => "Evaluate",
        WireMessage::Fitness(_) => "Fitness",
        WireMessage::BuildChildren { .. } => "BuildChildren",
        WireMessage::Children(_) => "Children",
        WireMessage::Shutdown => "Shutdown",
    }
}

/// A standalone TCP agent: binds an address and serves coordinators,
/// one session at a time — the `clan-cli agent` entry point.
#[derive(Debug)]
pub struct AgentServer {
    listener: TcpListener,
    delay: std::time::Duration,
}

impl AgentServer {
    /// Binds the server. Use port 0 for an ephemeral port (loopback
    /// clusters do).
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the address cannot be bound.
    pub fn bind<A: ToSocketAddrs + std::fmt::Display>(addr: A) -> Result<AgentServer, ClanError> {
        let listener = TcpListener::bind(&addr).map_err(|e| ClanError::Transport {
            peer: addr.to_string(),
            reason: format!("bind failed: {e}"),
        })?;
        Ok(AgentServer {
            listener,
            delay: std::time::Duration::ZERO,
        })
    }

    /// Adds an artificial per-request delay (`clan-cli agent
    /// --delay-ms`): every received frame stalls this long before being
    /// processed, emulating a slower device for heterogeneity testing.
    /// Results are unchanged — only timing.
    pub fn with_delay(mut self, delay: std::time::Duration) -> AgentServer {
        self.delay = delay;
        self
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Panics
    ///
    /// Panics if the socket vanished out from under the process — not
    /// observable through safe use.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener
            .local_addr()
            // clan-lint: allow(L1, reason="documented panic on a vanished socket; host-side resource, not wire-derived")
            .expect("bound listener has an address")
    }

    /// Accepts one coordinator and serves it to completion.
    ///
    /// # Errors
    ///
    /// Accept failures and in-session protocol/frame errors. Serving
    /// errors are returned, not panicked, so a malformed peer cannot
    /// take the agent down.
    pub fn serve_once(&self) -> Result<(), ClanError> {
        let (stream, peer) = self.listener.accept().map_err(|e| ClanError::Transport {
            peer: self.local_addr().to_string(),
            reason: format!("accept failed: {e}"),
        })?;
        let mut transport = super::TcpTransport::from_stream(stream, peer.to_string());
        if self.delay.is_zero() {
            serve_session(&mut transport)
        } else {
            serve_session(&mut super::DelayTransport::new(transport, self.delay))
        }
    }

    /// Serves coordinators forever, logging (not propagating) per-session
    /// failures: one bad coordinator must not kill an edge device's
    /// agent daemon.
    pub fn serve_forever(&self) -> ! {
        loop {
            if let Err(e) = self.serve_once() {
                eprintln!("agent session error: {e}");
            }
        }
    }
}

/// A standalone **UDP** agent: binds a datagram socket and serves
/// coordinators over the loss-tolerant
/// [`UdpTransport`](super::UdpTransport) — the `clan-cli agent --udp`
/// entry point.
///
/// There is no accept(): the server learns each coordinator's address
/// from the first datagram it sends (the `Configure` frame's first
/// fragment), connects the socket to that peer for the session, and
/// rebinds the same port for the next one.
#[derive(Debug)]
pub struct UdpAgentServer {
    /// Bound socket for the next session (`None` between sessions until
    /// rebound).
    socket: Option<std::net::UdpSocket>,
    /// The resolved local address, stable across rebinds.
    addr: std::net::SocketAddr,
    delay: std::time::Duration,
    udp: super::UdpConfig,
}

impl UdpAgentServer {
    /// Binds the server. Use port 0 for an ephemeral port.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the address cannot be bound.
    pub fn bind<A: ToSocketAddrs + std::fmt::Display>(
        addr: A,
    ) -> Result<UdpAgentServer, ClanError> {
        let socket = std::net::UdpSocket::bind(&addr).map_err(|e| ClanError::Transport {
            peer: addr.to_string(),
            reason: format!("udp bind failed: {e}"),
        })?;
        let local = socket.local_addr().map_err(|e| ClanError::Transport {
            peer: addr.to_string(),
            reason: format!("udp local addr: {e}"),
        })?;
        Ok(UdpAgentServer {
            socket: Some(socket),
            addr: local,
            delay: std::time::Duration::ZERO,
            udp: super::UdpConfig::default(),
        })
    }

    /// Adds an artificial per-request delay (see
    /// [`AgentServer::with_delay`]).
    pub fn with_delay(mut self, delay: std::time::Duration) -> UdpAgentServer {
        self.delay = delay;
        self
    }

    /// Overrides the datagram-transport tuning (MTU, retransmit pacing,
    /// liveness window). Fault injection in the config applies to this
    /// agent's side of the link.
    pub fn with_config(mut self, udp: super::UdpConfig) -> UdpAgentServer {
        self.udp = udp;
        self
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Waits for a coordinator and serves it to completion.
    ///
    /// # Errors
    ///
    /// Socket failures and in-session protocol/frame errors. A
    /// coordinator that vanishes mid-session ends the session cleanly
    /// (the transport's liveness timeout), exactly like a TCP
    /// disconnect.
    pub fn serve_once(&mut self) -> Result<(), ClanError> {
        let socket = match self.socket.take() {
            Some(s) => s,
            // Rebind the same port for a fresh, unconnected socket.
            None => std::net::UdpSocket::bind(self.addr).map_err(|e| ClanError::Transport {
                peer: self.addr.to_string(),
                reason: format!("udp rebind failed: {e}"),
            })?,
        };
        let err = |what: &str, e: std::io::Error| ClanError::Transport {
            peer: self.addr.to_string(),
            reason: format!("{what}: {e}"),
        };
        // Learn the coordinator's address without consuming its first
        // datagram, then filter the socket to that peer.
        socket
            .set_read_timeout(None)
            .map_err(|e| err("udp set timeout", e))?;
        let mut probe = [0u8; 1];
        let (_, peer) = socket
            .peek_from(&mut probe)
            .map_err(|e| err("udp peek", e))?;
        socket.connect(peer).map_err(|e| err("udp connect", e))?;
        let link = super::UdpLink::from_socket(socket, peer.to_string());
        let result = match &self.udp.faults {
            Some(f) => {
                let faulty = super::FaultyTransport::new(link, f.clone());
                self.serve_link(super::UdpTransport::with_config(faulty, &self.udp))
            }
            None => self.serve_link(super::UdpTransport::with_config(link, &self.udp)),
        };
        // The connected socket is dropped with the transport; the next
        // serve_once rebinds self.addr fresh.
        result
    }

    fn serve_link<L: super::DatagramLink>(
        &self,
        mut transport: super::UdpTransport<L>,
    ) -> Result<(), ClanError> {
        if self.delay.is_zero() {
            serve_session(&mut transport)
        } else {
            serve_session(&mut super::DelayTransport::new(transport, self.delay))
        }
    }

    /// Serves coordinators forever, logging (not propagating)
    /// per-session failures.
    pub fn serve_forever(&mut self) -> ! {
        loop {
            if let Err(e) = self.serve_once() {
                eprintln!("agent session error: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use crate::transport::{channel_pair, ClusterSpec};
    use clan_envs::Workload;
    use clan_neat::NeatConfig;

    fn spec() -> ClusterSpec {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(8)
            .build()
            .unwrap();
        ClusterSpec::new(w, InferenceMode::MultiStep, cfg)
    }

    #[test]
    fn session_requires_configure_first() {
        let (mut coord, mut agent_side) = channel_pair();
        let handle = std::thread::spawn(move || serve_session(&mut agent_side));
        send_message(
            &mut coord,
            &WireMessage::Evaluate {
                generation: 0,
                master_seed: 0,
                genomes: vec![],
            },
        )
        .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(err, ClanError::Protocol { .. }), "{err}");
    }

    #[test]
    fn session_shutdown_is_clean() {
        let (mut coord, mut agent_side) = channel_pair();
        let handle = std::thread::spawn(move || serve_session(&mut agent_side));
        send_message(&mut coord, &WireMessage::Configure(Box::new(spec()))).unwrap();
        send_message(&mut coord, &WireMessage::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn coordinator_disconnect_ends_session_quietly() {
        let (mut coord, mut agent_side) = channel_pair();
        let handle = std::thread::spawn(move || serve_session(&mut agent_side));
        send_message(&mut coord, &WireMessage::Configure(Box::new(spec()))).unwrap();
        drop(coord);
        handle.join().unwrap().unwrap();
    }
}
