//! TCP transport: length-prefixed frames over `std::net` sockets.
//!
//! Wire format per frame: a little-endian `u32` length, then that many
//! frame bytes (which themselves start with the `CLAN` magic — see
//! [`codec`](super::codec)). The length is validated against
//! [`MAX_FRAME_BYTES`](super::MAX_FRAME_BYTES) *before* any allocation,
//! so a corrupt or hostile peer cannot force an OOM; a peer that
//! disconnects mid-frame surfaces as a typed [`ClanError::Transport`].

use super::{Transport, MAX_FRAME_BYTES};
use crate::error::{ClanError, FrameError};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A frame pipe over one TCP connection.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
    /// When set, a receive that sees no bytes for this long surfaces a
    /// typed [`ClanError::Timeout`] instead of blocking forever.
    read_timeout: Option<std::time::Duration>,
    /// Set after a read timeout: `read_exact` may have consumed part of
    /// a frame before timing out, so the stream's frame boundary is
    /// lost. Every later receive fails typed instead of decoding
    /// garbage from a desynchronized stream.
    desynchronized: bool,
}

impl TcpTransport {
    /// Connects to a listening agent or coordinator.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the address does not resolve or the
    /// connection is refused.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(
        addr: A,
    ) -> Result<TcpTransport, ClanError> {
        let peer = addr.to_string();
        let stream = TcpStream::connect(&addr).map_err(|e| ClanError::Transport {
            peer: peer.clone(),
            reason: format!("connect failed: {e}"),
        })?;
        Ok(TcpTransport::from_stream(stream, peer))
    }

    /// Wraps an accepted connection.
    pub fn from_stream(stream: TcpStream, peer: String) -> TcpTransport {
        // Frames are whole protocol messages; coalescing them behind
        // Nagle's algorithm only adds latency to the request/response
        // rhythm. Best-effort: a failure here only costs performance.
        let _ = stream.set_nodelay(true);
        TcpTransport {
            stream,
            peer,
            read_timeout: None,
            desynchronized: false,
        }
    }

    /// Arms a liveness deadline: any receive that hears nothing for
    /// `timeout` fails with [`ClanError::Timeout`] — the stream-transport
    /// mirror of the UDP idle timeout, for peers that stay connected but
    /// go silent mid-generation.
    ///
    /// A timeout is terminal for the connection: the partial read may
    /// have consumed part of a frame, losing the stream's frame
    /// boundary, so every subsequent receive on this transport fails
    /// typed rather than decoding garbage. Discard the transport and
    /// reconnect (exactly how the runtime treats any exchange error).
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the socket rejects the option.
    pub fn with_read_timeout(
        mut self,
        timeout: std::time::Duration,
    ) -> Result<TcpTransport, ClanError> {
        self.stream
            .set_read_timeout(Some(timeout.max(std::time::Duration::from_millis(1))))
            .map_err(|e| self.io_err("set read timeout", e))?;
        self.read_timeout = Some(timeout);
        Ok(self)
    }

    fn io_err(&self, what: &str, e: std::io::Error) -> ClanError {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            if let Some(waited) = self.read_timeout {
                return ClanError::Timeout {
                    peer: self.peer.clone(),
                    waited,
                };
            }
        }
        ClanError::Transport {
            peer: self.peer.clone(),
            reason: format!("{what}: {e}"),
        }
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClanError> {
        let len = frame.len() as u32;
        self.stream
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.stream.write_all(frame))
            .map_err(|e| self.io_err("send", e))
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ClanError> {
        if self.desynchronized {
            return Err(ClanError::Transport {
                peer: self.peer.clone(),
                reason: "stream desynchronized by an earlier read timeout".into(),
            });
        }
        let fail = |t: &mut Self, what: &str, e: std::io::Error| {
            // A timed-out read_exact may have consumed a partial frame;
            // the boundary is gone for good.
            t.desynchronized = true;
            t.io_err(what, e)
        };
        let mut len_buf = [0u8; 4];
        self.stream
            .read_exact(&mut len_buf)
            .map_err(|e| fail(self, "recv length", e))?;
        let len = u32::from_le_bytes(len_buf) as u64;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized {
                announced: len,
                max: MAX_FRAME_BYTES,
            }
            .into());
        }
        let mut frame = vec![0u8; len as usize];
        self.stream
            .read_exact(&mut frame)
            .map_err(|e| fail(self, "recv frame", e))?;
        Ok(frame)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{recv_message, send_message, WireMessage};
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (stream, peer) = listener.accept().unwrap();
            TcpTransport::from_stream(stream, peer.to_string())
        });
        let client = TcpTransport::connect(addr).unwrap();
        (client, join.join().unwrap())
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut a, mut b) = loopback_pair();
        send_message(&mut a, &WireMessage::Shutdown).unwrap();
        let (msg, _) = recv_message(&mut b).unwrap();
        assert_eq!(msg, WireMessage::Shutdown);
    }

    #[test]
    fn oversized_length_prefix_is_typed_error_not_allocation() {
        let (mut a, mut b) = loopback_pair();
        // Announce a 4 GiB frame without sending it.
        a.stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        match b.recv_frame() {
            Err(ClanError::Frame(FrameError::Oversized { announced, .. })) => {
                assert_eq!(announced, u64::from(u32::MAX));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_mid_frame_is_typed_error() {
        let (mut a, mut b) = loopback_pair();
        // Announce 100 bytes, deliver 3, vanish.
        a.stream.write_all(&100u32.to_le_bytes()).unwrap();
        a.stream.write_all(&[1, 2, 3]).unwrap();
        drop(a);
        assert!(matches!(b.recv_frame(), Err(ClanError::Transport { .. })));
    }

    #[test]
    fn silent_connected_peer_times_out_typed() {
        use std::time::{Duration, Instant};
        let (a, b) = loopback_pair();
        let mut b = b.with_read_timeout(Duration::from_millis(80)).unwrap();
        // `a` stays connected but never sends a byte.
        let start = Instant::now();
        match b.recv_frame() {
            Err(ClanError::Timeout { waited, .. }) => {
                assert_eq!(waited, Duration::from_millis(80));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
        // The timed-out stream may have lost its frame boundary: later
        // receives fail typed instead of decoding garbage.
        assert!(matches!(b.recv_frame(), Err(ClanError::Transport { .. })));
        drop(a);
    }

    #[test]
    fn connect_to_unbound_port_fails_typed() {
        // Bind then immediately drop to get a port that refuses.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(matches!(
            TcpTransport::connect(addr),
            Err(ClanError::Transport { .. })
        ));
    }
}
