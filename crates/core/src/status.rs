//! Live cluster introspection: a tiny `std::net` HTTP endpoint serving
//! snapshots of a running coordinator.
//!
//! The design rule is **snapshots, never the hot path**: the run
//! publishes a [`StatusSnapshot`] into a [`StatusHandle`] at generation
//! boundaries (sync modes) or run transitions (async modes), and the
//! [`StatusServer`] thread answers every poll from the latest published
//! copy. Polling therefore cannot block an exchange, reorder an event,
//! or otherwise perturb the run — the determinism suites stay
//! bit-identical with the endpoint enabled.
//!
//! Routes:
//!
//! - `/metrics` — the tracer's [`MetricsRegistry`] in Prometheus text
//!   exposition format ([`MetricsRegistry::prometheus_text`]).
//! - `/health` — per-agent link membership (`alive`/`suspected`/`dead`,
//!   failure counts, last error) from the membership layer, as JSON.
//! - `/progress` — run phase, generation or evaluation count, and best
//!   fitness so far, as JSON.
//!
//! The server owns one listener thread; [`StatusServer::shutdown`] (or
//! drop) stops it promptly by flagging the loop and poking the listener
//! with a loopback connection.

use crate::error::ClanError;
use crate::membership::AgentHealth;
use crate::telemetry::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a poll observes: the latest state the run chose to publish.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusSnapshot {
    /// Coarse run phase: `starting`, `running`, `finished`, `failed`.
    pub phase: String,
    /// Generations completed (synchronous modes).
    pub generation: Option<u64>,
    /// Evaluations completed (async steady-state modes).
    pub evals: Option<u64>,
    /// Best fitness observed so far.
    pub best_fitness: Option<f64>,
    /// Whether the solve threshold has been reached.
    pub solved: bool,
    /// Per-agent link membership (empty for purely local runs).
    pub agents: Vec<AgentHealth>,
    /// Metrics registry copy taken at the last publish point.
    pub metrics: MetricsRegistry,
}

/// Shared slot the run publishes snapshots into and the server reads
/// from. Cheap to clone; all clones see the same slot.
#[derive(Debug, Clone, Default)]
pub struct StatusHandle {
    inner: Arc<Mutex<StatusSnapshot>>,
}

impl StatusHandle {
    /// A fresh handle holding a default (empty, phase `""`) snapshot.
    pub fn new() -> StatusHandle {
        StatusHandle::default()
    }

    /// Replaces the published snapshot wholesale.
    pub fn publish(&self, snapshot: StatusSnapshot) {
        if let Ok(mut slot) = self.inner.lock() {
            *slot = snapshot;
        }
    }

    /// Edits the published snapshot in place (for incremental fields
    /// like phase transitions that should not clobber the rest).
    pub fn update(&self, f: impl FnOnce(&mut StatusSnapshot)) {
        if let Ok(mut slot) = self.inner.lock() {
            f(&mut slot);
        }
    }

    /// The latest published snapshot (a copy).
    pub fn snapshot(&self) -> StatusSnapshot {
        self.inner.lock().map(|s| s.clone()).unwrap_or_default()
    }
}

/// Minimal JSON string escaping for hand-rolled payloads.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an optional f64 as a JSON value (`null` when absent or not
/// finite — `NaN` is not valid JSON).
fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".into(),
    }
}

/// The `/health` payload for a snapshot.
fn health_json(snap: &StatusSnapshot) -> String {
    let mut agents = String::new();
    for (i, a) in snap.agents.iter().enumerate() {
        if i > 0 {
            agents.push(',');
        }
        let last_error = match &a.last_error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".into(),
        };
        agents.push_str(&format!(
            "{{\"agent\":{i},\"health\":\"{}\",\"failures\":{},\"last_error\":{last_error}}}",
            a.health.label(),
            a.failures
        ));
    }
    let live = snap.agents.iter().filter(|a| a.health.is_live()).count();
    format!(
        "{{\"agents\":[{agents}],\"live\":{live},\"total\":{}}}",
        snap.agents.len()
    )
}

/// The `/progress` payload for a snapshot.
fn progress_json(snap: &StatusSnapshot) -> String {
    let opt = |v: Option<u64>| v.map_or("null".into(), |x: u64| x.to_string());
    format!(
        "{{\"phase\":\"{}\",\"generation\":{},\"evals\":{},\"best_fitness\":{},\"solved\":{}}}",
        json_escape(&snap.phase),
        opt(snap.generation),
        opt(snap.evals),
        json_f64(snap.best_fitness),
        snap.solved
    )
}

/// Answers one connection: parses the request line, routes, responds,
/// closes. Any I/O failure just drops the connection — a flaky poller
/// must never affect the run.
fn answer(stream: &mut TcpStream, handle: &StatusHandle) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // Read until the request's blank line: clients may deliver the
    // request line in several small writes, and answering a partial
    // read would close the socket mid-request.
    let mut buf = [0u8; 1024];
    let mut n = 0;
    loop {
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(m) => {
                n += m;
                if n >= buf.len() || buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break, // timeout: answer from whatever arrived
        }
    }
    if n == 0 {
        return;
    }
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let snap = handle.snapshot();
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            snap.metrics.prometheus_text(),
        ),
        "/health" => ("200 OK", "application/json", health_json(&snap)),
        "/progress" => ("200 OK", "application/json", progress_json(&snap)),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// The introspection endpoint: one listener thread serving `/metrics`,
/// `/health`, and `/progress` from a [`StatusHandle`].
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port)
    /// and starts serving the handle's snapshots.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] when the address cannot be bound.
    pub fn bind(addr: &str, handle: StatusHandle) -> Result<StatusServer, ClanError> {
        let listener = TcpListener::bind(addr).map_err(|e| ClanError::InvalidSetup {
            reason: format!("status endpoint cannot bind {addr}: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| ClanError::InvalidSetup {
            reason: format!("status endpoint has no local address: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = stream {
                    answer(&mut stream, &handle);
                }
            }
        });
        Ok(StatusServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::LinkHealth;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn sample_handle() -> StatusHandle {
        let handle = StatusHandle::new();
        let mut metrics = MetricsRegistry::default();
        metrics.inc("events.eval", 40);
        handle.publish(StatusSnapshot {
            phase: "running".into(),
            generation: Some(7),
            evals: None,
            best_fitness: Some(123.5),
            solved: false,
            agents: vec![
                AgentHealth {
                    health: LinkHealth::Alive,
                    failures: 0,
                    last_error: None,
                },
                AgentHealth {
                    health: LinkHealth::Suspected,
                    failures: 2,
                    last_error: Some("timed out after 1s \"probe\"".into()),
                },
            ],
            metrics,
        });
        handle
    }

    #[test]
    fn serves_metrics_health_progress_and_404() {
        let mut server = StatusServer::bind("127.0.0.1:0", sample_handle()).unwrap();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("clan_events_eval_total 40\n"));

        let health = get(addr, "/health");
        assert!(health.contains("application/json"));
        assert!(health.contains("\"health\":\"alive\""));
        assert!(health.contains("\"health\":\"suspected\""));
        assert!(health.contains("\\\"probe\\\""), "escaped quote: {health}");
        assert!(health.contains("\"live\":2,\"total\":2"));

        let progress = get(addr, "/progress");
        assert!(progress.contains("\"phase\":\"running\""));
        assert!(progress.contains("\"generation\":7"));
        assert!(progress.contains("\"evals\":null"));
        assert!(progress.contains("\"best_fitness\":123.5"));
        assert!(progress.contains("\"solved\":false"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
        // Idempotent; a second call must not hang or panic.
        server.shutdown();
    }

    #[test]
    fn snapshot_updates_are_visible_to_later_polls() {
        let handle = StatusHandle::new();
        let server = StatusServer::bind("127.0.0.1:0", handle.clone()).unwrap();
        let addr = server.local_addr();
        assert!(get(addr, "/progress").contains("\"generation\":null"));
        handle.update(|s| {
            s.phase = "running".into();
            s.generation = Some(3);
        });
        assert!(get(addr, "/progress").contains("\"generation\":3"));
    }

    #[test]
    fn json_escaping_handles_control_and_quote_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(Some(f64::NAN)), "null");
        assert_eq!(json_f64(None), "null");
        assert_eq!(json_f64(Some(2.5)), "2.5");
    }
}
