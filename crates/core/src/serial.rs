//! Serial baseline: the entire NEAT loop on a single node.
//!
//! This is the "localized implementation" the paper compares against in
//! Figures 9–11 — no communication, all compute on one platform (a lone
//! Pi, a Jetson, or the HPC box).

use crate::error::ClanError;
use crate::evaluator::Evaluator;
use crate::orchestra::{
    central_evolution, emit_generation_end, evaluate_partitioned, track_best, GenerationReport,
    Orchestrator,
};
use crate::topology::ClanTopology;
use clan_distsim::{Cluster, GenerationTimeline, TimelineRecorder};
use clan_neat::{Genome, Population};
use clan_netsim::CommLedger;

/// Runs every compute block on the cluster's center node.
#[derive(Debug)]
pub struct SerialOrchestrator {
    pop: Population,
    evaluator: Evaluator,
    cluster: Cluster,
    recorder: TimelineRecorder,
    ledger: CommLedger,
    best_ever: Option<Genome>,
}

impl SerialOrchestrator {
    /// Creates a serial run of `pop` on the center of `cluster`.
    pub fn new(pop: Population, evaluator: Evaluator, cluster: Cluster) -> SerialOrchestrator {
        SerialOrchestrator {
            pop,
            evaluator,
            cluster,
            recorder: TimelineRecorder::new(),
            ledger: CommLedger::new(),
            best_ever: None,
        }
    }

    /// The underlying population (for inspection in tests/benches).
    pub fn population(&self) -> &Population {
        &self.pop
    }
}

impl Orchestrator for SerialOrchestrator {
    fn topology(&self) -> ClanTopology {
        ClanTopology::serial()
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn step_generation(&mut self) -> Result<GenerationReport, ClanError> {
        let generation = self.pop.generation();
        let center = *self.cluster.center();

        // Phase I — all inference on the center.
        let pop_len = self.pop.len();
        let genes = evaluate_partitioned(&mut self.pop, &mut self.evaluator, &[pop_len])?;
        self.recorder
            .add_inference(center.inference_time_s(genes[0]));

        let best_fitness = self
            .pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        track_best(&mut self.best_ever, &self.pop);

        // Phases S, GP, R — all on the center.
        let evo = central_evolution(&mut self.pop)?;
        self.recorder
            .add_evolution(center.evolution_time_s(evo.speciation_genes + evo.reproduction_genes));

        let timeline: GenerationTimeline = self.recorder.finish_generation();
        let (cache_hits, cache_lookups) = self.evaluator.take_cache_window();
        let report = GenerationReport {
            generation,
            best_fitness,
            num_species: evo.num_species,
            timeline,
            costs: self.pop.counters_mut().finish_generation(),
            extinction: evo.extinction,
            cache_hits,
            cache_lookups,
        };
        emit_generation_end(self.evaluator.tracer(), &report);
        Ok(report)
    }

    fn best_ever(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    fn transport_ledger(&self) -> Option<&CommLedger> {
        self.evaluator.remote_ledger()
    }

    fn gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        self.evaluator.remote_gather_stats()
    }

    fn recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        self.evaluator.remote_recovery_stats()
    }

    fn membership(&self) -> Option<Vec<crate::membership::AgentHealth>> {
        self.evaluator.remote_membership()
    }

    fn recorder(&self) -> &TimelineRecorder {
        &self.recorder
    }

    fn population_size(&self) -> usize {
        self.pop.config().population_size
    }

    fn install_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        self.evaluator.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use clan_envs::Workload;
    use clan_hw::Platform;
    use clan_neat::NeatConfig;
    use clan_netsim::WifiModel;

    fn orchestrator(pop_size: usize, seed: u64) -> SerialOrchestrator {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop_size)
            .build()
            .unwrap();
        SerialOrchestrator::new(
            Population::new(cfg, seed),
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), 1, WifiModel::default()),
        )
    }

    #[test]
    fn serial_has_zero_communication() {
        let mut o = orchestrator(16, 1);
        for _ in 0..3 {
            let r = o.step_generation().unwrap();
            assert_eq!(r.timeline.communication_s, 0.0);
            assert!(r.timeline.inference_s > 0.0);
            assert!(r.timeline.evolution_s > 0.0);
        }
        assert_eq!(o.ledger().total_messages(), 0);
    }

    #[test]
    fn reports_generation_sequence() {
        let mut o = orchestrator(12, 2);
        for expect in 0..4 {
            let r = o.step_generation().unwrap();
            assert_eq!(r.generation, expect);
        }
    }

    #[test]
    fn best_ever_is_tracked() {
        let mut o = orchestrator(20, 3);
        assert!(o.best_ever().is_none());
        o.step_generation().unwrap();
        assert!(o.best_ever().is_some());
    }

    #[test]
    fn inference_dominates_for_multistep_cartpole() {
        // Figure 3's headline: inference is the costliest block. (The
        // orders-of-magnitude gap appears at the paper's population of
        // 150; at test scale we assert strict dominance.)
        let mut o = orchestrator(24, 4);
        let r = o.step_generation().unwrap();
        assert!(r.costs.inference_genes > r.costs.evolution_genes());
    }
}
