//! # clan-hw — hardware platform models
//!
//! The CLAN paper runs on five platforms (Table IV): Raspberry Pi 3
//! (ARM Cortex-A53), Jetson TX2 (CPU and GPU), and an HPC box (6th-gen i7
//! CPU and GTX 1080 GPU), plus a hypothetical 32x32 systolic-array
//! accelerator evaluated with SCALE-sim for Figure 10(c).
//!
//! Because the paper measures cost in *genes processed* (32-bit data), a
//! platform model reduces to a calibrated genes-per-second throughput for
//! the inference block and another for the evolution blocks, plus a fixed
//! per-phase overhead. Calibration targets the paper's reported
//! per-generation magnitudes on a single Pi; every figure in the
//! reproduction then uses relative behavior only (scaling curves, shares,
//! crossover points). See `DESIGN.md` §5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod platform;
pub mod systolic;

pub use energy::EnergyModel;
pub use platform::{Platform, PlatformKind};
pub use systolic::SystolicArray;
