//! First-order timing model of a 32x32 systolic-array DNN accelerator.
//!
//! The paper's Figure 10(c) asks: what if each edge node had a custom
//! inference accelerator instead of a Pi CPU? It answers with SCALE-sim
//! (a cycle-accurate systolic-array simulator) configured as a 32x32
//! array. For the reproduction we implement the standard first-order
//! output-stationary runtime estimate that SCALE-sim's analytical mode
//! computes: a layer multiplying an `n_in` vector into `n_out` outputs is
//! tiled over the array and costs roughly
//! `(rows + cols + n_in - 1)` cycles per `rows x cols` tile of the
//! weight matrix.

use serde::{Deserialize, Serialize};

/// A weight-stationary/output-stationary systolic array model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystolicArray {
    /// Processing-element rows.
    pub rows: usize,
    /// Processing-element columns.
    pub cols: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
}

impl Default for SystolicArray {
    /// The paper's configuration: 32x32 at an edge-class 200 MHz clock.
    fn default() -> Self {
        SystolicArray {
            rows: 32,
            cols: 32,
            freq_hz: 200e6,
        }
    }
}

impl SystolicArray {
    /// Creates an array model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the frequency is zero.
    pub fn new(rows: usize, cols: usize, freq_hz: f64) -> SystolicArray {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(freq_hz > 0.0, "frequency must be positive");
        SystolicArray {
            rows,
            cols,
            freq_hz,
        }
    }

    /// Cycles to compute one fully-connected layer (`n_in -> n_out`)
    /// in output-stationary dataflow.
    pub fn layer_cycles(&self, n_in: usize, n_out: usize) -> u64 {
        if n_in == 0 || n_out == 0 {
            return 0;
        }
        let row_tiles = n_in.div_ceil(self.rows) as u64;
        let col_tiles = n_out.div_ceil(self.cols) as u64;
        // Per tile: fill (rows) + drain (cols) + streaming (n_in within tile).
        let per_tile = (self.rows + self.cols) as u64 + self.rows.min(n_in) as u64;
        row_tiles * col_tiles * per_tile
    }

    /// Seconds to run one activation of a network described by its layer
    /// widths (e.g. `[(128, 20), (20, 18)]`).
    pub fn activation_time_s(&self, layers: &[(usize, usize)]) -> f64 {
        let cycles: u64 = layers.iter().map(|&(i, o)| self.layer_cycles(i, o)).sum();
        cycles as f64 / self.freq_hz
    }

    /// Effective genes-per-second throughput for a reference network,
    /// where the gene count of a layer is `n_in * n_out` connections plus
    /// `n_out` nodes (matching the NEAT cost metric).
    ///
    /// Used to slot the accelerator into the [`Platform`] cost model.
    ///
    /// [`Platform`]: crate::Platform
    pub fn effective_genes_per_sec(&self, layers: &[(usize, usize)]) -> f64 {
        let genes: u64 = layers.iter().map(|&(i, o)| (i * o + o) as u64).sum();
        let t = self.activation_time_s(layers);
        if t == 0.0 {
            return 0.0;
        }
        genes as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layer_one_tile() {
        let a = SystolicArray::default();
        // 32x32 fits in one tile: 32+32+32 = 96 cycles.
        assert_eq!(a.layer_cycles(32, 32), 96);
    }

    #[test]
    fn tiling_scales_cycles() {
        let a = SystolicArray::default();
        let one = a.layer_cycles(32, 32);
        assert_eq!(a.layer_cycles(64, 32), 2 * one);
        assert_eq!(a.layer_cycles(64, 64), 4 * one);
    }

    #[test]
    fn empty_layer_free() {
        let a = SystolicArray::default();
        assert_eq!(a.layer_cycles(0, 10), 0);
        assert_eq!(a.layer_cycles(10, 0), 0);
    }

    #[test]
    fn atari_reference_network_is_fast() {
        // 128 -> 20 -> 18: a typical evolved Atari genome shape.
        let a = SystolicArray::default();
        let t = a.activation_time_s(&[(128, 20), (20, 18)]);
        assert!(t < 1e-5, "one activation should take microseconds: {t}");
    }

    #[test]
    fn effective_throughput_far_exceeds_pi() {
        let a = SystolicArray::default();
        let gps = a.effective_genes_per_sec(&[(128, 20), (20, 18)]);
        // The Pi model is 1e4 genes/s; the array should be >= 100x that.
        assert!(gps > 1e6, "got {gps}");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        SystolicArray::new(0, 32, 1e6);
    }
}
