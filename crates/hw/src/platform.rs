//! Compute platforms and their calibrated throughputs (paper Table IV).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The platforms evaluated by the paper, plus the custom accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Raspberry Pi 3 — ARM Cortex-A53, $40 (the CLAN edge node).
    RaspberryPi,
    /// Jetson TX2 CPU — ARM Cortex-A57, $600.
    JetsonCpu,
    /// Jetson TX2 GPU — Pascal, $600.
    JetsonGpu,
    /// HPC CPU — 6th-gen Intel i7, $1500.
    HpcCpu,
    /// HPC GPU — Nvidia GTX 1080, $1500.
    HpcGpu,
    /// Hypothetical 32x32 systolic-array edge accelerator (Fig 10c),
    /// attached to a Pi host that still runs the evolution blocks.
    Systolic32x32,
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlatformKind::RaspberryPi => "Raspberry Pi",
            PlatformKind::JetsonCpu => "Jetson TX2 CPU",
            PlatformKind::JetsonGpu => "Jetson TX2 GPU",
            PlatformKind::HpcCpu => "HPC CPU",
            PlatformKind::HpcGpu => "HPC GPU",
            PlatformKind::Systolic32x32 => "Systolic 32x32",
        };
        f.write_str(s)
    }
}

/// A compute platform: identity, price, and calibrated throughputs.
///
/// `inference_genes_per_sec` covers the inference block (network
/// activations driving an environment); `evolution_genes_per_sec` covers
/// the memory-bound evolution blocks (distance computations, gene
/// copying). `phase_overhead_s` is a fixed cost charged once per compute
/// phase (interpreter dispatch, task wakeup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which platform this is.
    pub kind: PlatformKind,
    /// Unit price in dollars (Table IV), for the Fig 11 PPP metric.
    pub price_usd: f64,
    /// Calibrated throughput of the inference block, genes/second.
    pub inference_genes_per_sec: f64,
    /// Calibrated throughput of the evolution blocks, genes/second.
    pub evolution_genes_per_sec: f64,
    /// Fixed per-phase overhead in seconds.
    pub phase_overhead_s: f64,
}

/// Calibration anchor: a single Pi runs interpreted NEAT at roughly this
/// many inference genes per second (chosen so one Cartpole generation
/// lands in the paper's ~15 s and one Atari generation in the ~3000 s
/// ballpark; see `DESIGN.md` §5).
const PI_INFERENCE_GENES_PER_SEC: f64 = 1.0e4;
/// Evolution ops (distance compares, gene copies) are tight local memory
/// operations with none of the per-step environment overhead that the
/// inference path pays, making them roughly an order of magnitude faster
/// per gene. This ratio is what puts the Figure 8 evolution shares in
/// the paper's band.
const PI_EVOLUTION_GENES_PER_SEC: f64 = 2.0e5;

impl Platform {
    /// Builds the model for `kind` with the calibrated constants.
    pub fn new(kind: PlatformKind) -> Platform {
        // Speedups relative to the Pi, from the paper's Fig 11 ordering:
        // Jetson CPU ~3.5x, Jetson GPU ~8x, HPC CPU ~12x, HPC GPU ~30x.
        let (price, inf_mult, evo_mult) = match kind {
            PlatformKind::RaspberryPi => (40.0, 1.0, 1.0),
            PlatformKind::JetsonCpu => (600.0, 3.5, 3.5),
            PlatformKind::JetsonGpu => (600.0, 8.0, 4.0),
            PlatformKind::HpcCpu => (1500.0, 12.0, 12.0),
            PlatformKind::HpcGpu => (1500.0, 30.0, 14.0),
            // The systolic array (32x32 MACs at 200 MHz, ~2e11 MAC/s)
            // accelerates inference ~1000x over interpreted Pi execution,
            // but evolution still runs on the Pi host CPU — that asymmetry
            // is the point of Fig 10(c).
            PlatformKind::Systolic32x32 => (40.0 + 25.0, 1000.0, 1.0),
        };
        Platform {
            kind,
            price_usd: price,
            inference_genes_per_sec: PI_INFERENCE_GENES_PER_SEC * inf_mult,
            evolution_genes_per_sec: PI_EVOLUTION_GENES_PER_SEC * evo_mult,
            phase_overhead_s: 2e-3,
        }
    }

    /// Shorthand for the Raspberry Pi model.
    pub fn raspberry_pi() -> Platform {
        Platform::new(PlatformKind::RaspberryPi)
    }

    /// All Table IV platforms (excluding the hypothetical accelerator).
    pub fn table_iv() -> [Platform; 5] {
        [
            Platform::new(PlatformKind::HpcCpu),
            Platform::new(PlatformKind::HpcGpu),
            Platform::new(PlatformKind::JetsonCpu),
            Platform::new(PlatformKind::JetsonGpu),
            Platform::new(PlatformKind::RaspberryPi),
        ]
    }

    /// Time to process `genes` through the inference block.
    pub fn inference_time_s(&self, genes: u64) -> f64 {
        if genes == 0 {
            return 0.0;
        }
        self.phase_overhead_s + genes as f64 / self.inference_genes_per_sec
    }

    /// Time to process `genes` through an evolution block.
    pub fn evolution_time_s(&self, genes: u64) -> f64 {
        if genes == 0 {
            return 0.0;
        }
        self.phase_overhead_s + genes as f64 / self.evolution_genes_per_sec
    }

    /// Price-performance product helper: dollars × seconds (lower is
    /// better), the metric behind the paper's Fig 11 discussion.
    pub fn ppp(&self, units: usize, seconds_per_generation: f64) -> f64 {
        self.price_usd * units as f64 * seconds_per_generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let pi = Platform::raspberry_pi();
        let jc = Platform::new(PlatformKind::JetsonCpu);
        let jg = Platform::new(PlatformKind::JetsonGpu);
        let hc = Platform::new(PlatformKind::HpcCpu);
        let hg = Platform::new(PlatformKind::HpcGpu);
        assert!(pi.inference_genes_per_sec < jc.inference_genes_per_sec);
        assert!(jc.inference_genes_per_sec < jg.inference_genes_per_sec);
        assert!(jg.inference_genes_per_sec < hc.inference_genes_per_sec);
        assert!(hc.inference_genes_per_sec < hg.inference_genes_per_sec);
    }

    #[test]
    fn prices_match_table_iv() {
        assert_eq!(Platform::raspberry_pi().price_usd, 40.0);
        assert_eq!(Platform::new(PlatformKind::JetsonCpu).price_usd, 600.0);
        assert_eq!(Platform::new(PlatformKind::HpcGpu).price_usd, 1500.0);
    }

    #[test]
    fn price_ratios_match_paper_text() {
        // "The price of HPC machine and Jetson is comparable to 40x and
        // 15x to the cost of a RPi respectively."
        let pi = Platform::raspberry_pi().price_usd;
        assert_eq!(Platform::new(PlatformKind::HpcCpu).price_usd / pi, 37.5);
        assert_eq!(Platform::new(PlatformKind::JetsonCpu).price_usd / pi, 15.0);
    }

    #[test]
    fn time_scales_linearly_beyond_overhead() {
        let pi = Platform::raspberry_pi();
        let t1 = pi.inference_time_s(10_000);
        let t2 = pi.inference_time_s(20_000);
        let marginal = t2 - t1;
        assert!((marginal - 1.0).abs() < 1e-9, "10k genes = 1 s on a Pi");
    }

    #[test]
    fn zero_genes_costs_nothing() {
        let pi = Platform::raspberry_pi();
        assert_eq!(pi.inference_time_s(0), 0.0);
        assert_eq!(pi.evolution_time_s(0), 0.0);
    }

    #[test]
    fn cartpole_generation_in_paper_ballpark() {
        // ~150 genomes x ~40 surviving steps x ~10 genes/activation.
        let genes = 150 * 40 * 10;
        let t = Platform::raspberry_pi().inference_time_s(genes);
        assert!((2.0..40.0).contains(&t), "got {t} s");
    }

    #[test]
    fn systolic_accelerates_inference_only() {
        let sys = Platform::new(PlatformKind::Systolic32x32);
        let pi = Platform::raspberry_pi();
        assert!(sys.inference_genes_per_sec >= 50.0 * pi.inference_genes_per_sec);
        assert_eq!(sys.evolution_genes_per_sec, pi.evolution_genes_per_sec);
    }

    #[test]
    fn ppp_monotonic_in_units() {
        let pi = Platform::raspberry_pi();
        assert!(pi.ppp(2, 10.0) > pi.ppp(1, 10.0));
    }
}
