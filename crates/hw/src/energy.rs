//! Per-platform power draw and energy accounting.
//!
//! The paper argues CLAN's distributed Pis win on *energy and dollar
//! cost*; this module supplies the wattage side of that claim so the
//! benches can report energy-per-generation alongside
//! price-performance-product.

use crate::platform::{Platform, PlatformKind};
use serde::{Deserialize, Serialize};

/// Average active power draw of a platform, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Platform being modeled.
    pub kind: PlatformKind,
    /// Average power under NEAT load, watts.
    pub active_watts: f64,
    /// Idle power, watts.
    pub idle_watts: f64,
}

impl EnergyModel {
    /// Datasheet-class power figures for each platform.
    pub fn for_kind(kind: PlatformKind) -> EnergyModel {
        let (active, idle) = match kind {
            PlatformKind::RaspberryPi => (3.7, 1.9),
            PlatformKind::JetsonCpu => (9.0, 4.0),
            PlatformKind::JetsonGpu => (15.0, 5.0),
            PlatformKind::HpcCpu => (95.0, 30.0),
            PlatformKind::HpcGpu => (250.0, 60.0),
            PlatformKind::Systolic32x32 => (5.2, 2.1),
        };
        EnergyModel {
            kind,
            active_watts: active,
            idle_watts: idle,
        }
    }

    /// Energy (joules) for `busy_s` seconds of compute and `idle_s`
    /// seconds of waiting (e.g. blocked on communication).
    pub fn energy_j(&self, busy_s: f64, idle_s: f64) -> f64 {
        self.active_watts * busy_s + self.idle_watts * idle_s
    }

    /// Energy for one generation on `platform` given its compute seconds,
    /// assuming communication time is spent idling.
    pub fn generation_energy_j(platform: &Platform, compute_s: f64, comm_s: f64) -> f64 {
        EnergyModel::for_kind(platform.kind).energy_j(compute_s, comm_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_cluster_beats_hpc_energy_at_same_runtime() {
        // 10 Pis busy for 10 s use far less energy than an HPC GPU busy 10 s.
        let pi = EnergyModel::for_kind(PlatformKind::RaspberryPi);
        let hpc = EnergyModel::for_kind(PlatformKind::HpcGpu);
        assert!(10.0 * pi.energy_j(10.0, 0.0) < hpc.energy_j(10.0, 0.0));
    }

    #[test]
    fn idle_cheaper_than_active() {
        for kind in [
            PlatformKind::RaspberryPi,
            PlatformKind::JetsonCpu,
            PlatformKind::JetsonGpu,
            PlatformKind::HpcCpu,
            PlatformKind::HpcGpu,
            PlatformKind::Systolic32x32,
        ] {
            let m = EnergyModel::for_kind(kind);
            assert!(m.idle_watts < m.active_watts, "{kind:?}");
        }
    }

    #[test]
    fn energy_additive() {
        let m = EnergyModel::for_kind(PlatformKind::RaspberryPi);
        let e = m.energy_j(2.0, 3.0);
        assert!((e - (2.0 * 3.7 + 3.0 * 1.9)).abs() < 1e-12);
    }
}
