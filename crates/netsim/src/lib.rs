//! # clan-netsim — the WiFi cost model and communication ledger
//!
//! CLAN's testbed is "15 Raspberry Pi agents, talking over a 62.24 Mbps
//! client-to-client local WiFi network" with "peer-to-peer latency of
//! 8.83 ms for 64 B transfers" (§IV-A). [`WifiModel`] turns message sizes
//! into transfer times with exactly those constants; [`CommLedger`]
//! records every message by [`MessageKind`], producing the
//! floats-transferred breakdown of the paper's Figure 4 and the
//! communication-time series of Figures 5–10.
//!
//! A *gene* is a 32-bit datum (one float), so genome transfers are
//! measured in genes and converted at [`GENE_BYTES`] bytes each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod wifi;

pub use ledger::{CommLedger, LedgerEntry, MessageKind};
pub use wifi::{WifiModel, GENE_BYTES};
