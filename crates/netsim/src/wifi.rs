//! Transfer-time model of the testbed's WiFi link.

use serde::{Deserialize, Serialize};

/// Bytes per gene: the paper defines a gene as a 32-bit datastructure.
pub const GENE_BYTES: u64 = 4;

/// Point-to-point WiFi link model.
///
/// Transfer time of an `n`-byte message is
/// `base_latency_s + n * 8 / bandwidth_bps`. The defaults are the paper's
/// measured constants; [`WifiModel::scaled`] derives the hypothetical
/// better-technology links of Figure 10(a, b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiModel {
    /// Client-to-client bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Per-message setup latency, seconds.
    pub base_latency_s: f64,
    /// Fixed cost of opening a communication channel between the center
    /// and one agent for one phase (connection establishment plus
    /// serialization dispatch). The paper singles this out: "the constant
    /// cost of invoking the communication channels also kills this design"
    /// (§IV-D). Charged once per (phase, agent) pair.
    pub channel_setup_s: f64,
    /// Datagram payload size the link fragments messages at. When set,
    /// [`message_time_s`](WifiModel::message_time_s) charges
    /// `base_latency_s` once per *datagram* for messages larger than
    /// one MTU — what the PR-4 validation measured a real datagram
    /// stack paying (a fragmented 16 kB frame cost 13.4× the
    /// per-message model). `None` restores the paper's per-message
    /// accounting.
    pub mtu_bytes: Option<u64>,
}

impl Default for WifiModel {
    /// The paper's measured testbed: 62.24 Mbps, 8.83 ms per message,
    /// with a 150 ms per-phase channel-invocation overhead calibrated to
    /// Figure 5(b)'s communication growth and Figure 9's serial-crossover
    /// points, fragmenting at the datagram transport's default 1200 B
    /// MTU (messages that fit one datagram — every CartPole-scale genome
    /// — are charged exactly as before).
    fn default() -> Self {
        WifiModel {
            bandwidth_bps: 62.24e6,
            base_latency_s: 8.83e-3,
            channel_setup_s: 0.15,
            mtu_bytes: Some(1200),
        }
    }
}

impl WifiModel {
    /// Creates a link model with the default channel-invocation overhead.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive and finite, or latency is
    /// negative or not finite (NaN fails both checks) — a link model
    /// with nonsense constants would silently corrupt every timeline
    /// built on it.
    pub fn new(bandwidth_bps: f64, base_latency_s: f64) -> WifiModel {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive and finite, got {bandwidth_bps}"
        );
        assert!(
            base_latency_s.is_finite() && base_latency_s >= 0.0,
            "latency must be non-negative and finite, got {base_latency_s}"
        );
        WifiModel {
            bandwidth_bps,
            base_latency_s,
            channel_setup_s: WifiModel::default().channel_setup_s,
            mtu_bytes: WifiModel::default().mtu_bytes,
        }
    }

    /// A hypothetical improved link: bandwidth multiplied by
    /// `bandwidth_factor`, latency and channel setup divided by
    /// `latency_factor`.
    ///
    /// Figure 10(a, b) halves the communication cost, i.e.
    /// `scaled(2.0, 2.0)`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is zero, negative, or not finite.
    /// (A zero latency factor would divide to infinity and a zero
    /// bandwidth factor would zero the link — both previously produced
    /// silent nonsense timelines instead of an error.)
    pub fn scaled(&self, bandwidth_factor: f64, latency_factor: f64) -> WifiModel {
        assert!(
            bandwidth_factor.is_finite() && bandwidth_factor > 0.0,
            "bandwidth factor must be positive and finite, got {bandwidth_factor}"
        );
        assert!(
            latency_factor.is_finite() && latency_factor > 0.0,
            "latency factor must be positive and finite, got {latency_factor}"
        );
        WifiModel {
            bandwidth_bps: self.bandwidth_bps * bandwidth_factor,
            base_latency_s: self.base_latency_s / latency_factor,
            channel_setup_s: self.channel_setup_s / latency_factor,
            mtu_bytes: self.mtu_bytes,
        }
    }

    /// Sets (or clears) the fragmentation MTU
    /// (see [`mtu_bytes`](WifiModel::mtu_bytes)).
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)` — a zero MTU fragments nothing into
    /// infinitely many datagrams.
    pub fn with_mtu_bytes(mut self, mtu: Option<u64>) -> WifiModel {
        assert!(mtu != Some(0), "mtu must be at least one byte");
        self.mtu_bytes = mtu;
        self
    }

    /// Transfer time for a message of `bytes` bytes **charged per
    /// message**: one `base_latency_s` regardless of size (the paper's
    /// original accounting).
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.base_latency_s + (bytes * 8) as f64 / self.bandwidth_bps
    }

    /// Transfer time for a message of `bytes` bytes fragmented into
    /// `mtu`-byte datagrams, charging `base_latency_s` once **per
    /// datagram** — what the PR-4 validation measured on a real datagram
    /// path (16 fragments ≈ 16 × 8.83 ms, a 13.4× gap the per-message
    /// model missed). A message that fits one datagram costs exactly
    /// [`transfer_time_s`](WifiModel::transfer_time_s).
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero.
    pub fn transfer_time_fragmented_s(&self, bytes: u64, mtu: u64) -> f64 {
        assert!(mtu > 0, "mtu must be at least one byte");
        let datagrams = bytes.div_ceil(mtu).max(1);
        datagrams as f64 * self.base_latency_s + (bytes * 8) as f64 / self.bandwidth_bps
    }

    /// Transfer time the timeline model charges for one message of
    /// `bytes` bytes: fragmented per
    /// [`mtu_bytes`](WifiModel::mtu_bytes) when one is configured,
    /// per-message otherwise.
    pub fn message_time_s(&self, bytes: u64) -> f64 {
        match self.mtu_bytes {
            Some(mtu) if bytes > mtu => self.transfer_time_fragmented_s(bytes, mtu),
            _ => self.transfer_time_s(bytes),
        }
    }

    /// Transfer time for a message carrying `genes` genes (4 B each),
    /// honoring the fragmentation MTU — this is what the analytic
    /// timelines (`Comm::phase`, `Cluster::serialized_comm_time_s`)
    /// charge per message.
    pub fn gene_transfer_time_s(&self, genes: u64) -> f64 {
        self.message_time_s(genes * GENE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let w = WifiModel::default();
        assert_eq!(w.bandwidth_bps, 62.24e6);
        assert_eq!(w.base_latency_s, 8.83e-3);
    }

    #[test]
    fn sixty_four_byte_transfer_near_measured_latency() {
        // The paper quotes 8.83 ms for 64 B; the payload adds ~8 µs.
        let t = WifiModel::default().transfer_time_s(64);
        assert!((t - 8.83e-3).abs() < 1e-4, "got {t}");
    }

    #[test]
    fn latency_dominates_small_payloads() {
        let w = WifiModel::default();
        let small = w.transfer_time_s(4);
        let medium = w.transfer_time_s(4_000);
        assert!(medium < 2.0 * small, "setup cost should dominate");
    }

    #[test]
    fn bandwidth_dominates_large_payloads() {
        let w = WifiModel::default();
        let mb = w.transfer_time_s(1_000_000);
        assert!(mb > 0.1, "1 MB at 62 Mbps is > 100 ms, got {mb}");
    }

    #[test]
    fn scaled_halves_cost() {
        let w = WifiModel::default();
        let better = w.scaled(2.0, 2.0);
        let t = w.transfer_time_s(10_000);
        let t2 = better.transfer_time_s(10_000);
        assert!((t2 - t / 2.0).abs() < 1e-9);
        assert!((better.channel_setup_s - w.channel_setup_s / 2.0).abs() < 1e-12);
    }

    #[test]
    fn gene_transfer_uses_four_bytes() {
        let w = WifiModel::default();
        assert_eq!(w.gene_transfer_time_s(16), w.transfer_time_s(64));
    }

    #[test]
    fn fragmented_transfer_charges_latency_per_datagram() {
        let w = WifiModel::default();
        // 16 kB at a 1024 B MTU = 16 datagrams: the PR-4 validation's
        // measured case (≈141 ms of per-datagram latency, not 8.83 ms).
        let bytes = 16 * 1024;
        let t = w.transfer_time_fragmented_s(bytes, 1024);
        let expected = 16.0 * w.base_latency_s + (bytes * 8) as f64 / w.bandwidth_bps;
        assert!((t - expected).abs() < 1e-12, "got {t}, want {expected}");
        // One datagram: exactly the per-message model.
        assert_eq!(
            w.transfer_time_fragmented_s(512, 1024),
            w.transfer_time_s(512)
        );
        assert_eq!(w.transfer_time_fragmented_s(0, 1024), w.transfer_time_s(0));
    }

    #[test]
    fn timeline_message_time_fragments_past_the_mtu() {
        let w = WifiModel::default();
        let mtu = w.mtu_bytes.unwrap();
        // At or under the MTU: unchanged vs the paper's accounting.
        assert_eq!(w.message_time_s(mtu), w.transfer_time_s(mtu));
        assert_eq!(w.gene_transfer_time_s(mtu / 4), w.transfer_time_s(mtu));
        // Past it: per-datagram latency kicks in.
        assert!(w.message_time_s(mtu + 1) > w.transfer_time_s(mtu + 1));
        assert_eq!(
            w.message_time_s(10 * mtu),
            w.transfer_time_fragmented_s(10 * mtu, mtu)
        );
        // Opting out restores the per-message model everywhere.
        let legacy = w.with_mtu_bytes(None);
        assert_eq!(
            legacy.message_time_s(10 * mtu),
            legacy.transfer_time_s(10 * mtu)
        );
    }

    #[test]
    #[should_panic(expected = "mtu must be at least one byte")]
    fn zero_mtu_rejected() {
        let _ = WifiModel::default().transfer_time_fragmented_s(100, 0);
    }

    #[test]
    #[should_panic(expected = "mtu must be at least one byte")]
    fn zero_mtu_config_rejected() {
        let _ = WifiModel::default().with_mtu_bytes(Some(0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        WifiModel::new(0.0, 0.001);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn nan_bandwidth_rejected() {
        WifiModel::new(f64::NAN, 0.001);
    }

    #[test]
    #[should_panic(expected = "latency must be non-negative")]
    fn infinite_latency_rejected() {
        WifiModel::new(1e6, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor must be positive")]
    fn zero_bandwidth_factor_rejected() {
        let _ = WifiModel::default().scaled(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "latency factor must be positive")]
    fn zero_latency_factor_rejected() {
        // Previously divided to an infinite-latency link, silently.
        let _ = WifiModel::default().scaled(2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency factor must be positive")]
    fn negative_latency_factor_rejected() {
        let _ = WifiModel::default().scaled(2.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor must be positive")]
    fn nan_factor_rejected() {
        let _ = WifiModel::default().scaled(f64::NAN, 1.0);
    }
}
