//! Per-message-kind communication accounting (paper Figure 4).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The message categories of the paper's Figure 4 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Center → agents: whole genomes for distributed inference (DCS) or
    /// the one-time clan distribution (DDA initialization).
    SendGenomes,
    /// Agents → center: fitness scalars after inference.
    SendFitness,
    /// Center → agents: per-species spawn counts (DDS planning).
    SendSpawnCount,
    /// Center → agents: child specs / parent index lists (DDS planning).
    SendParentList,
    /// Center → agents: parent genomes needed for reproduction (DDS).
    SendParentGenomes,
    /// Agents → center: formed children for synchronous speciation (DDS).
    SendChildren,
}

impl MessageKind {
    /// All kinds, in the paper's legend order.
    pub const ALL: [MessageKind; 6] = [
        MessageKind::SendGenomes,
        MessageKind::SendFitness,
        MessageKind::SendSpawnCount,
        MessageKind::SendParentList,
        MessageKind::SendParentGenomes,
        MessageKind::SendChildren,
    ];
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::SendGenomes => "Sending Genomes",
            MessageKind::SendFitness => "Sending Fitness",
            MessageKind::SendSpawnCount => "Sending Spawn Count",
            MessageKind::SendParentList => "Sending Parent List",
            MessageKind::SendParentGenomes => "Sending Parent Genomes",
            MessageKind::SendChildren => "Sending Children",
        };
        f.write_str(s)
    }
}

/// Accumulated traffic for one message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Number of messages sent.
    pub messages: u64,
    /// Total 32-bit values (genes/floats) carried.
    pub floats: u64,
}

/// Records every message of a run, by kind.
///
/// The ledger is the source of both Figure 4 (floats transferred by kind)
/// and, combined with a [`WifiModel`], the communication-time component of
/// the execution timelines.
///
/// [`WifiModel`]: crate::WifiModel
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommLedger {
    entries: BTreeMap<MessageKind, LedgerEntry>,
}

impl CommLedger {
    /// Creates an empty ledger.
    pub fn new() -> CommLedger {
        CommLedger::default()
    }

    /// Records one message of `kind` carrying `floats` 32-bit values.
    pub fn record(&mut self, kind: MessageKind, floats: u64) {
        let e = self.entries.entry(kind).or_default();
        e.messages += 1;
        e.floats += floats;
    }

    /// Accumulated entry for `kind`.
    pub fn entry(&self, kind: MessageKind) -> LedgerEntry {
        self.entries.get(&kind).copied().unwrap_or_default()
    }

    /// Total floats transferred across all kinds.
    pub fn total_floats(&self) -> u64 {
        self.entries.values().map(|e| e.floats).sum()
    }

    /// Total messages sent across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.entries.values().map(|e| e.messages).sum()
    }

    /// `(kind, entry)` rows in legend order, including zero rows.
    pub fn rows(&self) -> Vec<(MessageKind, LedgerEntry)> {
        MessageKind::ALL
            .iter()
            .map(|&k| (k, self.entry(k)))
            .collect()
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CommLedger) {
        for (&kind, e) in &other.entries {
            let mine = self.entries.entry(kind).or_default();
            mine.messages += e.messages;
            mine.floats += e.floats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut l = CommLedger::new();
        l.record(MessageKind::SendGenomes, 100);
        l.record(MessageKind::SendGenomes, 50);
        l.record(MessageKind::SendFitness, 1);
        assert_eq!(
            l.entry(MessageKind::SendGenomes),
            LedgerEntry {
                messages: 2,
                floats: 150
            }
        );
        assert_eq!(l.total_floats(), 151);
        assert_eq!(l.total_messages(), 3);
    }

    #[test]
    fn rows_in_legend_order_with_zeros() {
        let mut l = CommLedger::new();
        l.record(MessageKind::SendChildren, 7);
        let rows = l.rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].0, MessageKind::SendGenomes);
        assert_eq!(rows[0].1.floats, 0);
        assert_eq!(rows[5].1.floats, 7);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = CommLedger::new();
        let mut b = CommLedger::new();
        a.record(MessageKind::SendFitness, 10);
        b.record(MessageKind::SendFitness, 5);
        b.record(MessageKind::SendSpawnCount, 3);
        a.merge(&b);
        assert_eq!(a.entry(MessageKind::SendFitness).floats, 15);
        assert_eq!(a.entry(MessageKind::SendSpawnCount).messages, 1);
    }

    #[test]
    fn display_matches_legend() {
        assert_eq!(
            MessageKind::SendSpawnCount.to_string(),
            "Sending Spawn Count"
        );
        assert_eq!(
            MessageKind::SendParentGenomes.to_string(),
            "Sending Parent Genomes"
        );
    }
}
