//! Per-message-kind communication accounting (paper Figure 4).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The message categories of the paper's Figure 4 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Center → agents: whole genomes for distributed inference (DCS) or
    /// the one-time clan distribution (DDA initialization).
    SendGenomes,
    /// Agents → center: fitness scalars after inference.
    SendFitness,
    /// Center → agents: per-species spawn counts (DDS planning).
    SendSpawnCount,
    /// Center → agents: child specs / parent index lists (DDS planning).
    SendParentList,
    /// Center → agents: parent genomes needed for reproduction (DDS).
    SendParentGenomes,
    /// Agents → center: formed children for synchronous speciation (DDS).
    SendChildren,
}

impl MessageKind {
    /// All kinds, in the paper's legend order.
    pub const ALL: [MessageKind; 6] = [
        MessageKind::SendGenomes,
        MessageKind::SendFitness,
        MessageKind::SendSpawnCount,
        MessageKind::SendParentList,
        MessageKind::SendParentGenomes,
        MessageKind::SendChildren,
    ];
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::SendGenomes => "Sending Genomes",
            MessageKind::SendFitness => "Sending Fitness",
            MessageKind::SendSpawnCount => "Sending Spawn Count",
            MessageKind::SendParentList => "Sending Parent List",
            MessageKind::SendParentGenomes => "Sending Parent Genomes",
            MessageKind::SendChildren => "Sending Children",
        };
        f.write_str(s)
    }
}

/// Accumulated traffic for one message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Number of messages sent.
    pub messages: u64,
    /// Total 32-bit values (genes/floats) carried.
    pub floats: u64,
    /// Measured bytes on a real transport (framing included). Zero for
    /// purely modeled runs, where only `floats` is accounted.
    pub wire_bytes: u64,
    /// Bytes the transport spent *recovering loss* on top of
    /// `wire_bytes`: retransmitted datagrams plus duplicates received
    /// and discarded. Zero on reliable transports and modeled runs —
    /// this column is what a lossy medium costs that neither the
    /// analytic model nor the first-transmission accounting sees.
    pub retrans_wire_bytes: u64,
}

/// Records every message of a run, by kind.
///
/// The ledger is the source of both Figure 4 (floats transferred by kind)
/// and, combined with a [`WifiModel`], the communication-time component of
/// the execution timelines.
///
/// [`WifiModel`]: crate::WifiModel
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommLedger {
    entries: BTreeMap<MessageKind, LedgerEntry>,
    /// Traffic attributed to individual agents (index = agent/link id),
    /// populated by the real runtime's per-link recording. Empty for
    /// modeled-only ledgers. This is what makes partition imbalance
    /// visible: a starved agent shows a zero row.
    per_agent: Vec<LedgerEntry>,
}

impl CommLedger {
    /// Creates an empty ledger.
    pub fn new() -> CommLedger {
        CommLedger::default()
    }

    /// Records one message of `kind` carrying `floats` 32-bit values.
    pub fn record(&mut self, kind: MessageKind, floats: u64) {
        self.record_wire(kind, floats, 0);
    }

    /// Records one message of `kind` carrying `floats` 32-bit values that
    /// was observed on a real transport occupying `wire_bytes` bytes
    /// (payload plus framing). The real TCP/channel runtime uses this so
    /// the analytic model's traffic (4 bytes per float, no framing) can
    /// be validated against what a wire format actually costs.
    pub fn record_wire(&mut self, kind: MessageKind, floats: u64, wire_bytes: u64) {
        let e = self.entries.entry(kind).or_default();
        e.messages += 1;
        e.floats += floats;
        e.wire_bytes += wire_bytes;
    }

    /// [`record_wire`](CommLedger::record_wire) that additionally
    /// attributes the message to agent `agent` (a coordinator-side link
    /// index), so per-agent load imbalance can be measured.
    pub fn record_agent_wire(&mut self, agent: usize, kind: MessageKind, floats: u64, bytes: u64) {
        self.record_wire(kind, floats, bytes);
        let e = self.agent_entry_mut(agent);
        e.messages += 1;
        e.floats += floats;
        e.wire_bytes += bytes;
    }

    /// Records `bytes` of loss-recovery overhead (retransmitted and
    /// duplicate datagrams) observed on agent `agent`'s link. Message
    /// and float counts are untouched: a retransmission moves no new
    /// payload, only repeats bytes already accounted in `wire_bytes`.
    pub fn record_agent_retrans(&mut self, agent: usize, bytes: u64) {
        self.agent_entry_mut(agent).retrans_wire_bytes += bytes;
    }

    fn agent_entry_mut(&mut self, agent: usize) -> &mut LedgerEntry {
        if self.per_agent.len() <= agent {
            self.per_agent.resize(agent + 1, LedgerEntry::default());
        }
        &mut self.per_agent[agent]
    }

    /// Per-agent traffic rows (index = link id). Empty unless the
    /// recorder attributed messages to agents.
    pub fn agent_entries(&self) -> &[LedgerEntry] {
        &self.per_agent
    }

    /// Accumulated entry for `kind`.
    pub fn entry(&self, kind: MessageKind) -> LedgerEntry {
        self.entries.get(&kind).copied().unwrap_or_default()
    }

    /// Total floats transferred across all kinds.
    pub fn total_floats(&self) -> u64 {
        self.entries.values().map(|e| e.floats).sum()
    }

    /// Total messages sent across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.entries.values().map(|e| e.messages).sum()
    }

    /// Total measured bytes on the wire across all kinds (zero for
    /// modeled-only ledgers).
    pub fn total_wire_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.wire_bytes).sum()
    }

    /// Total loss-recovery bytes (retransmissions + received duplicates)
    /// across all agents. Zero on reliable transports; under a lossy
    /// datagram transport this is the measured price of the medium.
    pub fn total_retrans_bytes(&self) -> u64 {
        self.per_agent.iter().map(|e| e.retrans_wire_bytes).sum()
    }

    /// Loss-recovery bytes as a fraction of first-transmission wire
    /// bytes, when both were measured — e.g. `0.25` means a quarter of
    /// the useful traffic was re-sent.
    pub fn retrans_overhead(&self) -> Option<f64> {
        let wire = self.total_wire_bytes();
        (wire > 0 && self.total_retrans_bytes() > 0)
            .then(|| self.total_retrans_bytes() as f64 / wire as f64)
    }

    /// Bytes the analytic model charges for this traffic: 4 bytes per
    /// 32-bit float/gene, no framing (paper Table II).
    pub fn modeled_bytes(&self) -> u64 {
        self.total_floats() * 4
    }

    /// Measured-over-modeled byte ratio, when both were recorded.
    ///
    /// `> 1.0` means the real wire format (f64 attributes, gene keys,
    /// length prefixes) costs more than the paper's 4-bytes-per-gene
    /// accounting; the gap is the framing overhead `clan-netsim`'s
    /// timeline model does not see.
    pub fn framing_overhead(&self) -> Option<f64> {
        let (modeled, wire) = (self.modeled_bytes(), self.total_wire_bytes());
        (modeled > 0 && wire > 0).then(|| wire as f64 / modeled as f64)
    }

    /// `(kind, entry)` rows in legend order, including zero rows.
    pub fn rows(&self) -> Vec<(MessageKind, LedgerEntry)> {
        MessageKind::ALL
            .iter()
            .map(|&k| (k, self.entry(k)))
            .collect()
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CommLedger) {
        for (&kind, e) in &other.entries {
            let mine = self.entries.entry(kind).or_default();
            mine.messages += e.messages;
            mine.floats += e.floats;
            mine.wire_bytes += e.wire_bytes;
            mine.retrans_wire_bytes += e.retrans_wire_bytes;
        }
        if self.per_agent.len() < other.per_agent.len() {
            self.per_agent
                .resize(other.per_agent.len(), LedgerEntry::default());
        }
        for (mine, e) in self.per_agent.iter_mut().zip(&other.per_agent) {
            mine.messages += e.messages;
            mine.floats += e.floats;
            mine.wire_bytes += e.wire_bytes;
            mine.retrans_wire_bytes += e.retrans_wire_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut l = CommLedger::new();
        l.record(MessageKind::SendGenomes, 100);
        l.record(MessageKind::SendGenomes, 50);
        l.record(MessageKind::SendFitness, 1);
        assert_eq!(
            l.entry(MessageKind::SendGenomes),
            LedgerEntry {
                messages: 2,
                floats: 150,
                wire_bytes: 0,
                retrans_wire_bytes: 0
            }
        );
        assert_eq!(l.total_floats(), 151);
        assert_eq!(l.total_messages(), 3);
    }

    #[test]
    fn wire_bytes_tracked_and_compared_to_model() {
        let mut l = CommLedger::new();
        assert_eq!(l.framing_overhead(), None, "empty ledger has no ratio");
        l.record_wire(MessageKind::SendGenomes, 100, 1000);
        l.record_wire(MessageKind::SendFitness, 50, 200);
        assert_eq!(l.total_wire_bytes(), 1200);
        assert_eq!(l.modeled_bytes(), 600);
        assert!((l.framing_overhead().unwrap() - 2.0).abs() < 1e-12);
        // Modeled-only records keep the ratio meaningful.
        l.record(MessageKind::SendSpawnCount, 10);
        assert_eq!(l.entry(MessageKind::SendSpawnCount).wire_bytes, 0);
    }

    #[test]
    fn rows_in_legend_order_with_zeros() {
        let mut l = CommLedger::new();
        l.record(MessageKind::SendChildren, 7);
        let rows = l.rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].0, MessageKind::SendGenomes);
        assert_eq!(rows[0].1.floats, 0);
        assert_eq!(rows[5].1.floats, 7);
    }

    #[test]
    fn per_agent_rows_attribute_traffic() {
        let mut l = CommLedger::new();
        assert!(l.agent_entries().is_empty());
        l.record_agent_wire(0, MessageKind::SendGenomes, 100, 900);
        l.record_agent_wire(2, MessageKind::SendGenomes, 50, 500);
        l.record_agent_wire(0, MessageKind::SendFitness, 4, 40);
        let rows = l.agent_entries();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].messages, 2);
        assert_eq!(rows[0].wire_bytes, 940);
        assert_eq!(rows[1], LedgerEntry::default(), "idle agent is visible");
        assert_eq!(rows[2].floats, 50);
        // Kind-level totals include the attributed messages exactly once.
        assert_eq!(l.entry(MessageKind::SendGenomes).messages, 2);
        assert_eq!(l.total_wire_bytes(), 1440);
    }

    #[test]
    fn retrans_bytes_attributed_per_agent_without_message_counts() {
        let mut l = CommLedger::new();
        assert_eq!(l.total_retrans_bytes(), 0);
        assert_eq!(l.retrans_overhead(), None);
        l.record_agent_wire(0, MessageKind::SendGenomes, 100, 1000);
        l.record_agent_retrans(0, 250);
        l.record_agent_retrans(2, 50);
        let rows = l.agent_entries();
        assert_eq!(rows[0].retrans_wire_bytes, 250);
        assert_eq!(rows[0].messages, 1, "retrans moves no new messages");
        assert_eq!(rows[1].retrans_wire_bytes, 0);
        assert_eq!(rows[2].retrans_wire_bytes, 50);
        assert_eq!(l.total_retrans_bytes(), 300);
        assert!((l.retrans_overhead().unwrap() - 0.3).abs() < 1e-12);
        // Merge carries the column.
        let mut other = CommLedger::new();
        other.record_agent_retrans(0, 10);
        l.merge(&other);
        assert_eq!(l.total_retrans_bytes(), 310);
    }

    #[test]
    fn overhead_ratios_guard_zero_denominators() {
        // Empty ledger: no traffic at all — both ratios are None, never
        // NaN or inf.
        let empty = CommLedger::new();
        assert_eq!(empty.framing_overhead(), None);
        assert_eq!(empty.retrans_overhead(), None);

        // Modeled-only run: floats recorded, zero wire bytes. The
        // framing ratio would divide wire/modeled = 0/600 (misleading,
        // not undefined) and retrans would divide by zero wire bytes.
        let mut modeled = CommLedger::new();
        modeled.record(MessageKind::SendGenomes, 150);
        assert_eq!(modeled.modeled_bytes(), 600);
        assert_eq!(modeled.framing_overhead(), None);
        assert_eq!(modeled.retrans_overhead(), None);

        // Retransmissions without measured first-transmission bytes
        // (pathological, but reachable if only record_agent_retrans ran):
        // the retrans ratio's denominator is zero, so it must stay None.
        let mut retrans_only = CommLedger::new();
        retrans_only.record_agent_retrans(0, 512);
        assert_eq!(retrans_only.total_retrans_bytes(), 512);
        assert_eq!(retrans_only.retrans_overhead(), None);

        // Measured wire traffic turns both ratios on, and they are finite.
        let mut wire = CommLedger::new();
        wire.record_agent_wire(0, MessageKind::SendGenomes, 100, 800);
        wire.record_agent_retrans(0, 200);
        assert!((wire.framing_overhead().unwrap() - 2.0).abs() < 1e-12);
        assert!((wire.retrans_overhead().unwrap() - 0.25).abs() < 1e-12);
        assert!(wire.framing_overhead().unwrap().is_finite());
        assert!(wire.retrans_overhead().unwrap().is_finite());
    }

    #[test]
    fn merge_extends_per_agent_rows() {
        let mut a = CommLedger::new();
        let mut b = CommLedger::new();
        a.record_agent_wire(0, MessageKind::SendFitness, 2, 20);
        b.record_agent_wire(1, MessageKind::SendFitness, 4, 40);
        a.merge(&b);
        assert_eq!(a.agent_entries().len(), 2);
        assert_eq!(a.agent_entries()[0].floats, 2);
        assert_eq!(a.agent_entries()[1].wire_bytes, 40);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = CommLedger::new();
        let mut b = CommLedger::new();
        a.record(MessageKind::SendFitness, 10);
        b.record(MessageKind::SendFitness, 5);
        b.record(MessageKind::SendSpawnCount, 3);
        a.merge(&b);
        assert_eq!(a.entry(MessageKind::SendFitness).floats, 15);
        assert_eq!(a.entry(MessageKind::SendSpawnCount).messages, 1);
    }

    #[test]
    fn display_matches_legend() {
        assert_eq!(
            MessageKind::SendSpawnCount.to_string(),
            "Sending Spawn Count"
        );
        assert_eq!(
            MessageKind::SendParentGenomes.to_string(),
            "Sending Parent Genomes"
        );
    }
}
