//! Airraid-ram-v0 surrogate: defend buildings from descending ships.
//!
//! A fixed-gun shooter on a 32x16 grid. Waves of enemy ships descend;
//! the player slides along the bottom row and fires bullets upward.
//! Hitting a ship scores +25; a ship reaching the bottom destroys a
//! building (3 buildings = 3 "lives"). Action set size 6, matching the
//! real Airraid: noop, fire, right, left, right+fire, left+fire.

use crate::atari_ram::{fill_opaque, rng::splitmix64, RamGame, RamMachine, RAM_BYTES};

const GRID_W: i32 = 32;
const GRID_H: i32 = 16;
const MAX_SHIPS: usize = 8;
const MAX_BULLETS: usize = 4;
/// Frames between ship descents in the first wave.
const BASE_DESCENT_PERIOD: u32 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ship {
    x: i32,
    y: i32,
    alive: bool,
}

/// Game state for the AirRaid surrogate.
#[derive(Debug, Clone)]
pub struct AirRaid {
    player_x: i32,
    ships: [Ship; MAX_SHIPS],
    bullets: [(i32, i32); MAX_BULLETS],
    bullet_live: [bool; MAX_BULLETS],
    buildings: u8,
    score: u32,
    wave: u32,
    frame: u32,
    rng_state: u64,
    fire_cooldown: u32,
    done: bool,
}

impl AirRaid {
    /// Creates the game in an unstarted state.
    pub fn new() -> AirRaid {
        AirRaid {
            player_x: GRID_W / 2,
            ships: [Ship {
                x: 0,
                y: 0,
                alive: false,
            }; MAX_SHIPS],
            bullets: [(0, 0); MAX_BULLETS],
            bullet_live: [false; MAX_BULLETS],
            buildings: 3,
            score: 0,
            wave: 0,
            frame: 0,
            rng_state: 0,
            fire_cooldown: 0,
            done: false,
        }
    }

    /// Current score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Wraps the game in a [`RamMachine`] environment.
    pub fn environment() -> RamMachine<AirRaid> {
        RamMachine::new(AirRaid::new())
    }

    fn next_u64(&mut self) -> u64 {
        self.rng_state = splitmix64(self.rng_state);
        self.rng_state
    }

    fn spawn_wave(&mut self) {
        self.wave += 1;
        for i in 0..MAX_SHIPS {
            let r = self.next_u64();
            self.ships[i] = Ship {
                x: (r % GRID_W as u64) as i32,
                y: ((r >> 8) % 4) as i32, // staggered near the top
                alive: true,
            };
        }
    }

    fn descent_period(&self) -> u32 {
        BASE_DESCENT_PERIOD.saturating_sub(self.wave.min(6)).max(2)
    }

    fn state_hash(&self) -> u64 {
        let mut h = splitmix64(self.frame as u64 ^ ((self.score as u64) << 20));
        h ^= splitmix64(self.player_x as u64 ^ ((self.buildings as u64) << 32));
        for s in &self.ships {
            h = splitmix64(h ^ (s.x as u64) ^ ((s.y as u64) << 8) ^ ((s.alive as u64) << 16));
        }
        h
    }
}

impl Default for AirRaid {
    fn default() -> Self {
        AirRaid::new()
    }
}

impl RamGame for AirRaid {
    fn name(&self) -> &'static str {
        "Airraid-ram-v0"
    }

    fn n_actions(&self) -> usize {
        6
    }

    fn solved_at(&self) -> f64 {
        400.0
    }

    fn reset(&mut self, seed: u64) {
        *self = AirRaid::new();
        self.rng_state = splitmix64(seed ^ 0xA1A1);
        self.spawn_wave();
    }

    fn tick(&mut self, action: usize) -> (f64, bool) {
        debug_assert!(!self.done);
        self.frame += 1;
        let mut reward = 0.0;

        // Player movement and firing: noop, fire, right, left, r+f, l+f.
        let (dx, fire) = match action {
            0 => (0, false),
            1 => (0, true),
            2 => (1, false),
            3 => (-1, false),
            4 => (1, true),
            5 => (-1, true),
            _ => unreachable!(),
        };
        self.player_x = (self.player_x + dx).clamp(0, GRID_W - 1);
        if self.fire_cooldown > 0 {
            self.fire_cooldown -= 1;
        }
        if fire && self.fire_cooldown == 0 {
            if let Some(slot) = self.bullet_live.iter().position(|&l| !l) {
                self.bullets[slot] = (self.player_x, GRID_H - 2);
                self.bullet_live[slot] = true;
                self.fire_cooldown = 2;
            }
        }

        // Bullets rise two cells per frame.
        for i in 0..MAX_BULLETS {
            if self.bullet_live[i] {
                self.bullets[i].1 -= 2;
                if self.bullets[i].1 < 0 {
                    self.bullet_live[i] = false;
                }
            }
        }

        // Ships drift and periodically descend.
        let descend = self.frame.is_multiple_of(self.descent_period());
        for i in 0..MAX_SHIPS {
            if !self.ships[i].alive {
                continue;
            }
            let r = self.next_u64();
            let drift = (r % 3) as i32 - 1;
            self.ships[i].x = (self.ships[i].x + drift).rem_euclid(GRID_W);
            if descend {
                self.ships[i].y += 1;
            }
        }

        // Bullet-ship collisions (same cell or bullet passed through).
        for b in 0..MAX_BULLETS {
            if !self.bullet_live[b] {
                continue;
            }
            let (bx, by) = self.bullets[b];
            for s in 0..MAX_SHIPS {
                let ship = self.ships[s];
                if ship.alive && ship.x == bx && (ship.y == by || ship.y == by + 1) {
                    self.ships[s].alive = false;
                    self.bullet_live[b] = false;
                    self.score += 25;
                    reward += 25.0;
                    break;
                }
            }
        }

        // Ships reaching the bottom destroy a building.
        for s in 0..MAX_SHIPS {
            if self.ships[s].alive && self.ships[s].y >= GRID_H - 1 {
                self.ships[s].alive = false;
                self.buildings = self.buildings.saturating_sub(1);
            }
        }
        if self.buildings == 0 {
            self.done = true;
        }

        // Next wave once cleared.
        if !self.done && self.ships.iter().all(|s| !s.alive) {
            self.spawn_wave();
        }

        (reward, self.done)
    }

    fn write_ram(&self, ram: &mut [u8; RAM_BYTES]) {
        ram[0] = self.player_x as u8;
        ram[1] = self.buildings;
        ram[2] = (self.score & 0xFF) as u8;
        ram[3] = (self.score >> 8) as u8;
        ram[4] = self.wave as u8;
        ram[5] = (self.frame & 0xFF) as u8;
        let mut idx = 6;
        for s in &self.ships {
            ram[idx] = s.x as u8;
            ram[idx + 1] = s.y.clamp(0, 255) as u8;
            ram[idx + 2] = s.alive as u8;
            idx += 3;
        }
        for (i, &(bx, by)) in self.bullets.iter().enumerate() {
            ram[idx] = if self.bullet_live[i] { bx as u8 } else { 255 };
            ram[idx + 1] = if self.bullet_live[i] {
                by.clamp(0, 255) as u8
            } else {
                255
            };
            idx += 2;
        }
        fill_opaque(ram, idx, self.state_hash());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    #[test]
    fn environment_shape() {
        let mut env = AirRaid::environment();
        let obs = env.reset(1);
        assert_eq!(obs.len(), RAM_BYTES);
        assert_eq!(env.n_actions(), 6);
        assert_eq!(env.name(), "Airraid-ram-v0");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = AirRaid::environment();
        let mut b = AirRaid::environment();
        assert_eq!(a.reset(7), b.reset(7));
        for t in 0..100 {
            let action = (t % 6) as usize;
            let (sa, sb) = (a.step(action), b.step(action));
            assert_eq!(sa, sb);
            if sa.done {
                break;
            }
        }
    }

    #[test]
    fn firing_scores_eventually() {
        // A scripted spray policy should hit at least one ship in 200 frames.
        let mut env = AirRaid::environment();
        env.reset(2);
        let mut total = 0.0;
        for t in 0..200 {
            let action = match t % 4 {
                0 => 4, // right + fire
                1 => 1, // fire
                2 => 5, // left + fire
                _ => 1,
            };
            let s = env.step(action);
            total += s.reward;
            if s.done {
                break;
            }
        }
        assert!(total > 0.0, "spray policy should score, got {total}");
    }

    #[test]
    fn idle_player_loses_buildings() {
        let mut env = AirRaid::environment();
        env.reset(3);
        let mut done = false;
        for _ in 0..2000 {
            if env.step(0).done {
                done = true;
                break;
            }
        }
        assert!(done, "unopposed ships must destroy all buildings");
    }

    #[test]
    fn score_monotonic_nonnegative_rewards() {
        let mut env = AirRaid::environment();
        env.reset(4);
        for t in 0..150 {
            let s = env.step(if t % 2 == 0 { 1 } else { 2 });
            assert!(s.reward >= 0.0);
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn ram_reflects_player_motion() {
        let mut env = AirRaid::environment();
        env.reset(5);
        let x0 = env.ram()[0];
        for _ in 0..3 {
            env.step(2); // right
        }
        assert!(env.ram()[0] > x0 || x0 as i32 >= GRID_W - 1);
    }
}
