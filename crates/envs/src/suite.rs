//! The paper's workload suite (§III-B): small, medium, and large tasks.

use crate::airraid::AirRaid;
use crate::alien::AlienGame;
use crate::amidar::Amidar;
use crate::atari_ram::RamMachine;
use crate::cartpole::CartPole;
use crate::lunar_lander::LunarLander;
use crate::mountain_car::MountainCar;
use crate::Environment;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Workload size class, as used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Cartpole-v0, MountainCar-v0.
    Small,
    /// LunarLander-v2.
    Medium,
    /// Atari RAM games.
    Large,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::Small => f.write_str("small"),
            WorkloadClass::Medium => f.write_str("medium"),
            WorkloadClass::Large => f.write_str("large"),
        }
    }
}

/// The six evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Cartpole-v0 (small).
    CartPole,
    /// MountainCar-v0 (small).
    MountainCar,
    /// LunarLander-v2 (medium).
    LunarLander,
    /// Airraid-ram-v0 (large).
    AirRaid,
    /// Amidar-ram-v0 (large; the paper omits it from most figures as it
    /// "performs equivalently to airraid-ram-v0").
    Amidar,
    /// Alien-ram-v0 (large).
    Alien,
}

impl Workload {
    /// All six workloads.
    pub const ALL: [Workload; 6] = [
        Workload::CartPole,
        Workload::MountainCar,
        Workload::LunarLander,
        Workload::AirRaid,
        Workload::Amidar,
        Workload::Alien,
    ];

    /// The five workloads the paper plots (Amidar omitted, §IV-B).
    pub const FIGURES: [Workload; 5] = [
        Workload::CartPole,
        Workload::MountainCar,
        Workload::LunarLander,
        Workload::AirRaid,
        Workload::Alien,
    ];

    /// Gym-style environment id.
    pub fn name(self) -> &'static str {
        match self {
            Workload::CartPole => "Cartpole-v0",
            Workload::MountainCar => "MountainCar-v0",
            Workload::LunarLander => "LunarLander-v2",
            Workload::AirRaid => "Airraid-ram-v0",
            Workload::Amidar => "Amidar-ram-v0",
            Workload::Alien => "Alien-ram-v0",
        }
    }

    /// Size class per the paper.
    pub fn class(self) -> WorkloadClass {
        match self {
            Workload::CartPole | Workload::MountainCar => WorkloadClass::Small,
            Workload::LunarLander => WorkloadClass::Medium,
            Workload::AirRaid | Workload::Amidar | Workload::Alien => WorkloadClass::Large,
        }
    }

    /// Observation dimension (NEAT input width).
    pub fn obs_dim(self) -> usize {
        match self {
            Workload::CartPole => 4,
            Workload::MountainCar => 2,
            Workload::LunarLander => 8,
            Workload::AirRaid | Workload::Amidar | Workload::Alien => crate::RAM_BYTES,
        }
    }

    /// Number of discrete actions (NEAT output width).
    pub fn n_actions(self) -> usize {
        match self {
            Workload::CartPole => 2,
            Workload::MountainCar => 3,
            Workload::LunarLander => 4,
            Workload::AirRaid => 6,
            Workload::Amidar => 10,
            Workload::Alien => 18,
        }
    }

    /// Gym's convergence score for the task.
    pub fn solved_at(self) -> f64 {
        match self {
            Workload::CartPole => 195.0,
            Workload::MountainCar => -110.0,
            Workload::LunarLander => 200.0,
            Workload::AirRaid => 400.0,
            Workload::Amidar => 100.0,
            Workload::Alien => 500.0,
        }
    }

    /// The paper's per-episode step cap.
    pub fn max_steps(self) -> u64 {
        200
    }

    /// Instantiates the environment.
    pub fn make(self) -> Box<dyn Environment> {
        match self {
            Workload::CartPole => Box::new(CartPole::new()),
            Workload::MountainCar => Box::new(MountainCar::new()),
            Workload::LunarLander => Box::new(LunarLander::new()),
            Workload::AirRaid => Box::new(RamMachine::new(AirRaid::new())),
            Workload::Amidar => Box::new(RamMachine::new(Amidar::new())),
            Workload::Alien => Box::new(RamMachine::new(AlienGame::new())),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_matches_instances() {
        for w in Workload::ALL {
            let mut env = w.make();
            assert_eq!(env.obs_dim(), w.obs_dim(), "{w}");
            assert_eq!(env.n_actions(), w.n_actions(), "{w}");
            assert_eq!(env.name(), w.name(), "{w}");
            assert_eq!(env.solved_at(), w.solved_at(), "{w}");
            let obs = env.reset(1);
            assert_eq!(obs.len(), w.obs_dim(), "{w}");
        }
    }

    #[test]
    fn classes_partition_suite() {
        use WorkloadClass::*;
        assert_eq!(Workload::CartPole.class(), Small);
        assert_eq!(Workload::MountainCar.class(), Small);
        assert_eq!(Workload::LunarLander.class(), Medium);
        assert_eq!(Workload::AirRaid.class(), Large);
        assert_eq!(Workload::Amidar.class(), Large);
        assert_eq!(Workload::Alien.class(), Large);
    }

    #[test]
    fn figures_excludes_amidar_only() {
        assert_eq!(Workload::FIGURES.len(), 5);
        assert!(!Workload::FIGURES.contains(&Workload::Amidar));
    }

    #[test]
    fn every_workload_steps_for_full_cap_or_terminates() {
        for w in Workload::ALL {
            let mut env = w.make();
            env.reset(9);
            let mut steps = 0;
            for _ in 0..w.max_steps() {
                let s = env.step(0);
                steps += 1;
                if s.done {
                    break;
                }
            }
            assert!(steps > 0, "{w}");
        }
    }
}
