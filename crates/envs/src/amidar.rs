//! Amidar-ram-v0 surrogate: paint a lattice while dodging patrollers.
//!
//! The player walks a 14x10 lattice, earning +1 for every newly painted
//! cell (+10 for completing a row). Four enemies patrol rows and bounce
//! off the edges; contact costs a life (3 total). "Fire" variants of the
//! movement actions spend one of three per-life freezes that stop the
//! patrollers for a few frames — a stand-in for Amidar's jump button.
//! Action set size 10, matching the real Amidar-ram-v0.
//!
//! The paper notes Amidar "performs equivalently to Airraid" and omits it
//! from most figures; it is included here for suite completeness.

use crate::atari_ram::{fill_opaque, rng::splitmix64, RamGame, RamMachine, RAM_BYTES};

const COLS: i32 = 14;
const ROWS: i32 = 10;
const N_ENEMIES: usize = 4;
const FREEZE_FRAMES: u32 = 10;
const FREEZES_PER_LIFE: u8 = 3;

#[derive(Debug, Clone, Copy)]
struct Patroller {
    x: i32,
    y: i32,
    dir: i32,
}

/// Game state for the Amidar surrogate.
#[derive(Debug, Clone)]
pub struct Amidar {
    player: (i32, i32),
    painted: [[bool; COLS as usize]; ROWS as usize],
    painted_count: u32,
    enemies: [Patroller; N_ENEMIES],
    lives: u8,
    freezes_left: u8,
    freeze_timer: u32,
    score: u32,
    frame: u32,
    rng_state: u64,
    done: bool,
}

impl Amidar {
    /// Creates the game in an unstarted state.
    pub fn new() -> Amidar {
        Amidar {
            player: (0, 0),
            painted: [[false; COLS as usize]; ROWS as usize],
            painted_count: 0,
            enemies: [Patroller { x: 0, y: 0, dir: 1 }; N_ENEMIES],
            lives: 3,
            freezes_left: FREEZES_PER_LIFE,
            freeze_timer: 0,
            score: 0,
            frame: 0,
            rng_state: 0,
            done: false,
        }
    }

    /// Current score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Wraps the game in a [`RamMachine`] environment.
    pub fn environment() -> RamMachine<Amidar> {
        RamMachine::new(Amidar::new())
    }

    fn next_u64(&mut self) -> u64 {
        self.rng_state = splitmix64(self.rng_state);
        self.rng_state
    }

    fn place_enemies(&mut self) {
        for i in 0..N_ENEMIES {
            let r = self.next_u64();
            self.enemies[i] = Patroller {
                x: (r % COLS as u64) as i32,
                // Spread patrollers over distinct rows, away from (0, 0).
                y: (2 + (i as i32 * 2)) % ROWS,
                dir: if r & 0x100 == 0 { 1 } else { -1 },
            };
        }
    }

    fn paint(&mut self) -> f64 {
        let (x, y) = self.player;
        let cell = &mut self.painted[y as usize][x as usize];
        if *cell {
            return 0.0;
        }
        *cell = true;
        self.painted_count += 1;
        self.score += 1;
        let mut reward = 1.0;
        if self.painted[y as usize].iter().all(|&p| p) {
            self.score += 10;
            reward += 10.0;
        }
        reward
    }

    fn state_hash(&self) -> u64 {
        let mut h = splitmix64(
            self.frame as u64 ^ ((self.score as u64) << 16) ^ ((self.lives as u64) << 48),
        );
        h = splitmix64(h ^ (self.player.0 as u64) ^ ((self.player.1 as u64) << 8));
        for e in &self.enemies {
            h = splitmix64(h ^ (e.x as u64) ^ ((e.y as u64) << 8));
        }
        h ^ self.painted_count as u64
    }
}

impl Default for Amidar {
    fn default() -> Self {
        Amidar::new()
    }
}

impl RamGame for Amidar {
    fn name(&self) -> &'static str {
        "Amidar-ram-v0"
    }

    fn n_actions(&self) -> usize {
        10
    }

    fn solved_at(&self) -> f64 {
        100.0
    }

    fn reset(&mut self, seed: u64) {
        *self = Amidar::new();
        self.rng_state = splitmix64(seed ^ 0xA111DA);
        self.place_enemies();
    }

    fn tick(&mut self, action: usize) -> (f64, bool) {
        debug_assert!(!self.done);
        self.frame += 1;
        let mut reward = 0.0;

        // Actions: 0 noop, 1 up, 2 right, 3 left, 4 down, 5-8 move+freeze,
        // 9 freeze in place.
        let (dx, dy, freeze) = match action {
            0 => (0, 0, false),
            1 => (0, -1, false),
            2 => (1, 0, false),
            3 => (-1, 0, false),
            4 => (0, 1, false),
            5 => (0, -1, true),
            6 => (1, 0, true),
            7 => (-1, 0, true),
            8 => (0, 1, true),
            9 => (0, 0, true),
            _ => unreachable!(),
        };
        if freeze && self.freezes_left > 0 && self.freeze_timer == 0 {
            self.freezes_left -= 1;
            self.freeze_timer = FREEZE_FRAMES;
        }
        self.player.0 = (self.player.0 + dx).clamp(0, COLS - 1);
        self.player.1 = (self.player.1 + dy).clamp(0, ROWS - 1);
        reward += self.paint();

        // Patrollers bounce along their rows unless frozen.
        if self.freeze_timer > 0 {
            self.freeze_timer -= 1;
        } else {
            for i in 0..N_ENEMIES {
                let e = &mut self.enemies[i];
                e.x += e.dir;
                if e.x <= 0 || e.x >= COLS - 1 {
                    e.x = e.x.clamp(0, COLS - 1);
                    e.dir = -e.dir;
                }
            }
            // Occasionally a patroller hops one row toward the player.
            let r = self.next_u64();
            if r.is_multiple_of(13) {
                let i = (r >> 8) as usize % N_ENEMIES;
                let dy = (self.player.1 - self.enemies[i].y).signum();
                self.enemies[i].y = (self.enemies[i].y + dy).clamp(0, ROWS - 1);
            }
        }

        // Contact: lose a life, respawn at the origin corner.
        if self.enemies.iter().any(|e| (e.x, e.y) == self.player) {
            self.lives = self.lives.saturating_sub(1);
            self.player = (0, 0);
            self.freezes_left = FREEZES_PER_LIFE;
            self.freeze_timer = 0;
            if self.lives == 0 {
                self.done = true;
            }
        }

        // Board fully painted: fresh board, keep score rolling.
        if self.painted_count as i32 == COLS * ROWS {
            self.painted = [[false; COLS as usize]; ROWS as usize];
            self.painted_count = 0;
        }

        (reward, self.done)
    }

    fn write_ram(&self, ram: &mut [u8; RAM_BYTES]) {
        ram[0] = self.player.0 as u8;
        ram[1] = self.player.1 as u8;
        ram[2] = self.lives;
        ram[3] = (self.score & 0xFF) as u8;
        ram[4] = (self.score >> 8) as u8;
        ram[5] = self.freezes_left;
        ram[6] = self.freeze_timer as u8;
        let mut idx = 7;
        for e in &self.enemies {
            ram[idx] = e.x as u8;
            ram[idx + 1] = e.y as u8;
            ram[idx + 2] = (e.dir + 1) as u8;
            idx += 3;
        }
        // Painted bitmap: 140 cells -> 18 bytes.
        for row in 0..ROWS as usize {
            for col in 0..COLS as usize {
                let bit = row * COLS as usize + col;
                if self.painted[row][col] {
                    ram[idx + bit / 8] |= 1 << (bit % 8);
                } else {
                    ram[idx + bit / 8] &= !(1 << (bit % 8));
                }
            }
        }
        idx += (COLS * ROWS) as usize / 8 + 1;
        fill_opaque(ram, idx, self.state_hash());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    #[test]
    fn environment_shape() {
        let mut env = Amidar::environment();
        let obs = env.reset(1);
        assert_eq!(obs.len(), RAM_BYTES);
        assert_eq!(env.n_actions(), 10);
    }

    #[test]
    fn painting_scores() {
        let mut env = Amidar::environment();
        env.reset(2);
        let mut total = 0.0;
        // Walk right along the top row.
        for _ in 0..10 {
            let s = env.step(2);
            total += s.reward;
            if s.done {
                break;
            }
        }
        assert!(total >= 5.0, "walking fresh cells must score, got {total}");
    }

    #[test]
    fn repainting_does_not_score() {
        let mut env = Amidar::environment();
        env.reset(3);
        env.step(2);
        env.step(3); // back to painted origin cell
        let s = env.step(2); // back to painted cell again
        assert_eq!(s.reward, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Amidar::environment();
        let mut b = Amidar::environment();
        assert_eq!(a.reset(4), b.reset(4));
        for t in 0..100 {
            assert_eq!(a.step(t % 10), b.step(t % 10));
        }
    }

    #[test]
    fn eventually_caught_when_idle_mid_board() {
        let mut env = Amidar::environment();
        env.reset(5);
        // Move to the middle and stand still: patrollers must catch us.
        for _ in 0..5 {
            env.step(4);
        }
        for _ in 0..4 {
            env.step(2);
        }
        let mut done = false;
        for _ in 0..5000 {
            if env.step(0).done {
                done = true;
                break;
            }
        }
        assert!(done, "idle player should eventually lose all lives");
    }

    #[test]
    fn row_completion_bonus() {
        let mut env = Amidar::environment();
        env.reset(6);
        let mut total = 0.0;
        total += env.step(0).reward; // paint the origin cell
        for _ in 0..(COLS - 1) {
            let s = env.step(2);
            total += s.reward;
            if s.done {
                break;
            }
        }
        // 14 cells + 10 row bonus = 24 (enemies patrol rows >= 2, so the
        // top row walk is safe).
        assert_eq!(total, 24.0, "row bonus should apply");
    }
}
