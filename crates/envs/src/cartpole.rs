//! Cartpole-v0: balance a pole on a cart by pushing left or right.
//!
//! Dynamics follow Barto, Sutton & Anderson (1983) exactly as OpenAI gym
//! implements them (Euler integration, `tau = 0.02 s`). The paper classes
//! this as a *small* workload: 4 observations, 2 actions, +1 reward per
//! surviving step.

use crate::{Environment, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MASS_CART: f64 = 1.0;
const MASS_POLE: f64 = 0.1;
const TOTAL_MASS: f64 = MASS_CART + MASS_POLE;
const TAU: f64 = 0.02;
/// Episode ends when |x| exceeds this.
const X_THRESHOLD: f64 = 2.4;
/// Episode ends when |theta| exceeds this (12 degrees).
const THETA_THRESHOLD: f64 = 12.0 * std::f64::consts::PI / 180.0;

/// Physical parameters of the cart-pole.
///
/// The defaults are gym's constants. Changing them at runtime (e.g. a
/// longer pole, lower gravity) models the paper's Figure-1 scenario of an
/// agent meeting an environment it was not trained for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CartPoleParams {
    /// Gravitational acceleration (default 9.8).
    pub gravity: f64,
    /// Half the pole length (default 0.5, as in gym).
    pub pole_half_length: f64,
    /// Magnitude of the push applied by each action (default 10.0).
    pub force_mag: f64,
}

impl Default for CartPoleParams {
    fn default() -> Self {
        CartPoleParams {
            gravity: 9.8,
            pole_half_length: 0.5,
            force_mag: 10.0,
        }
    }
}

/// The cart-pole balancing environment.
#[derive(Debug, Clone, Default)]
pub struct CartPole {
    params: CartPoleParams,
    x: f64,
    x_dot: f64,
    theta: f64,
    theta_dot: f64,
    done: bool,
    started: bool,
}

impl CartPole {
    /// Creates an environment; call [`Environment::reset`] before stepping.
    pub fn new() -> CartPole {
        CartPole::default()
    }

    /// Creates an environment with non-standard physics.
    pub fn with_params(params: CartPoleParams) -> CartPole {
        CartPole {
            params,
            ..CartPole::default()
        }
    }

    /// The physical parameters in force.
    pub fn params(&self) -> CartPoleParams {
        self.params
    }

    fn obs(&self) -> Vec<f64> {
        vec![self.x, self.x_dot, self.theta, self.theta_dot]
    }
}

impl Environment for CartPole {
    fn obs_dim(&self) -> usize {
        4
    }

    fn n_actions(&self) -> usize {
        2
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.x = rng.gen_range(-0.05..0.05);
        self.x_dot = rng.gen_range(-0.05..0.05);
        self.theta = rng.gen_range(-0.05..0.05);
        self.theta_dot = rng.gen_range(-0.05..0.05);
        self.done = false;
        self.started = true;
        self.obs()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(self.started, "reset() must be called before step()");
        assert!(!self.done, "step() called on terminated episode");
        assert!(action < 2, "cartpole action {action} out of range");

        let CartPoleParams {
            gravity,
            pole_half_length: length,
            force_mag,
        } = self.params;
        let pole_mass_length = MASS_POLE * length;
        let force = if action == 1 { force_mag } else { -force_mag };
        let cos_t = self.theta.cos();
        let sin_t = self.theta.sin();
        let temp =
            (force + pole_mass_length * self.theta_dot * self.theta_dot * sin_t) / TOTAL_MASS;
        let theta_acc = (gravity * sin_t - cos_t * temp)
            / (length * (4.0 / 3.0 - MASS_POLE * cos_t * cos_t / TOTAL_MASS));
        let x_acc = temp - pole_mass_length * theta_acc * cos_t / TOTAL_MASS;

        self.x += TAU * self.x_dot;
        self.x_dot += TAU * x_acc;
        self.theta += TAU * self.theta_dot;
        self.theta_dot += TAU * theta_acc;

        self.done = self.x.abs() > X_THRESHOLD || self.theta.abs() > THETA_THRESHOLD;
        Step {
            obs: self.obs(),
            reward: 1.0,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "Cartpole-v0"
    }

    fn solved_at(&self) -> f64 {
        195.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_within_jitter_bounds() {
        let mut env = CartPole::new();
        for seed in 0..20 {
            let obs = env.reset(seed);
            assert!(obs.iter().all(|v| v.abs() < 0.05), "{obs:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CartPole::new();
        let mut b = CartPole::new();
        assert_eq!(a.reset(42), b.reset(42));
        for _ in 0..50 {
            let sa = a.step(1);
            let sb = b.step(1);
            assert_eq!(sa, sb);
            if sa.done {
                break;
            }
        }
    }

    #[test]
    fn constant_push_eventually_fails() {
        let mut env = CartPole::new();
        env.reset(3);
        let mut steps = 0;
        loop {
            let s = env.step(1);
            steps += 1;
            if s.done {
                break;
            }
            assert!(steps < 500, "constant action should topple the pole");
        }
        assert!(steps < 200, "toppled in {steps} steps");
    }

    #[test]
    fn bang_bang_controller_survives_200_steps() {
        // The classic textbook policy: push in the direction the pole leans.
        let mut env = CartPole::new();
        let mut obs = env.reset(4);
        for _ in 0..200 {
            let action = if obs[2] + 0.5 * obs[3] > 0.0 { 1 } else { 0 };
            let s = env.step(action);
            assert!(!s.done, "bang-bang policy should balance");
            obs = s.obs;
        }
    }

    #[test]
    fn reward_is_one_per_step() {
        let mut env = CartPole::new();
        env.reset(5);
        assert_eq!(env.step(0).reward, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_action_panics() {
        let mut env = CartPole::new();
        env.reset(6);
        env.step(2);
    }

    #[test]
    #[should_panic(expected = "reset() must be called")]
    fn step_before_reset_panics() {
        CartPole::new().step(0);
    }
}
