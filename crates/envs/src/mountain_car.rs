//! MountainCar-v0: drive an underpowered car out of a valley by rocking.
//!
//! Standard gym dynamics (Moore 1990): position in `[-1.2, 0.6]`, velocity
//! clipped to `±0.07`, reward −1 per step until the flag at `0.5` is
//! reached. A *small* workload in the paper's taxonomy (2 observations,
//! 3 actions) — but a hard-exploration one, since random policies rarely
//! reach the flag within 200 steps.

use crate::{Environment, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MIN_POSITION: f64 = -1.2;
const MAX_POSITION: f64 = 0.6;
const MAX_SPEED: f64 = 0.07;
const GOAL_POSITION: f64 = 0.5;
const FORCE: f64 = 0.001;
const GRAVITY: f64 = 0.0025;

/// The mountain-car environment.
#[derive(Debug, Clone, Default)]
pub struct MountainCar {
    position: f64,
    velocity: f64,
    done: bool,
    started: bool,
}

impl MountainCar {
    /// Creates an environment; call [`Environment::reset`] before stepping.
    pub fn new() -> MountainCar {
        MountainCar::default()
    }

    fn obs(&self) -> Vec<f64> {
        vec![self.position, self.velocity]
    }
}

impl Environment for MountainCar {
    fn obs_dim(&self) -> usize {
        2
    }

    fn n_actions(&self) -> usize {
        3
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.position = rng.gen_range(-0.6..-0.4);
        self.velocity = 0.0;
        self.done = false;
        self.started = true;
        self.obs()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(self.started, "reset() must be called before step()");
        assert!(!self.done, "step() called on terminated episode");
        assert!(action < 3, "mountain-car action {action} out of range");

        self.velocity += (action as f64 - 1.0) * FORCE - (3.0 * self.position).cos() * GRAVITY;
        self.velocity = self.velocity.clamp(-MAX_SPEED, MAX_SPEED);
        self.position += self.velocity;
        self.position = self.position.clamp(MIN_POSITION, MAX_POSITION);
        if self.position <= MIN_POSITION && self.velocity < 0.0 {
            self.velocity = 0.0; // inelastic left wall, as in gym
        }
        self.done = self.position >= GOAL_POSITION;
        Step {
            obs: self.obs(),
            reward: -1.0,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "MountainCar-v0"
    }

    fn solved_at(&self) -> f64 {
        -110.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_in_valley() {
        let mut env = MountainCar::new();
        for seed in 0..20 {
            let obs = env.reset(seed);
            assert!((-0.6..-0.4).contains(&obs[0]), "{obs:?}");
            assert_eq!(obs[1], 0.0);
        }
    }

    #[test]
    fn coasting_never_escapes() {
        let mut env = MountainCar::new();
        env.reset(1);
        for _ in 0..200 {
            let s = env.step(1); // no throttle
            assert!(!s.done, "coasting must not reach the flag");
        }
    }

    #[test]
    fn full_throttle_right_alone_fails() {
        // The car is underpowered by construction: pushing right from the
        // valley floor cannot climb the hill directly.
        let mut env = MountainCar::new();
        env.reset(2);
        for _ in 0..200 {
            let s = env.step(2);
            assert!(!s.done, "direct ascent should be impossible");
        }
    }

    #[test]
    fn rocking_policy_escapes() {
        // Accelerate in the direction of motion — the canonical solution.
        let mut env = MountainCar::new();
        let mut obs = env.reset(3);
        let mut solved = false;
        for _ in 0..200 {
            let action = if obs[1] >= 0.0 { 2 } else { 0 };
            let s = env.step(action);
            obs = s.obs;
            if s.done {
                solved = true;
                break;
            }
        }
        assert!(solved, "energy-pumping policy must reach the flag");
    }

    #[test]
    fn velocity_clipped() {
        let mut env = MountainCar::new();
        let mut obs = env.reset(4);
        for _ in 0..200 {
            let action = if obs[1] >= 0.0 { 2 } else { 0 };
            let s = env.step(action);
            assert!(s.obs[1].abs() <= MAX_SPEED + 1e-12);
            obs = s.obs;
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn reward_is_minus_one() {
        let mut env = MountainCar::new();
        env.reset(5);
        assert_eq!(env.step(1).reward, -1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = MountainCar::new();
        let mut b = MountainCar::new();
        assert_eq!(a.reset(9), b.reset(9));
        for _ in 0..100 {
            assert_eq!(a.step(2), b.step(2));
        }
    }
}
