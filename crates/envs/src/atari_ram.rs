//! Synthetic "Atari RAM" machines: the paper's *large* workloads.
//!
//! The CLAN paper evaluates Airraid-ram-v0, Amidar-ram-v0 and Alien-ram-v0
//! — gym environments whose observation is the Atari 2600's 128-byte RAM.
//! Shipping a 2600 emulator is out of scope (and irrelevant: the paper
//! uses these only as *large* workloads whose 128-wide input layer makes
//! genomes, and therefore inference and communication, big). Instead,
//! each game here is a deterministic, seeded state machine with:
//!
//! - a 128-byte RAM observation ([`RAM_BYTES`]), some bytes structured
//!   (positions, lives, score) and the rest filled with state-derived
//!   pseudo-random bytes, mimicking real RAM's mix of legible and opaque
//!   state;
//! - the real action-set sizes (6 / 10 / 18);
//! - incremental scoring and a terminal condition.
//!
//! [`RamMachine`] adapts any [`RamGame`] to the [`Environment`] trait,
//! normalizing RAM bytes to `[0, 1]` floats.

use self::rng::splitmix64;
use crate::{Environment, Step};

/// Width of the Atari RAM observation.
pub const RAM_BYTES: usize = 128;

/// Game logic behind a RAM observation.
///
/// Implementations must be deterministic functions of `(seed, actions)`.
pub trait RamGame: Send {
    /// Gym-style environment name.
    fn name(&self) -> &'static str;
    /// Size of the discrete action set.
    fn n_actions(&self) -> usize;
    /// Score considered "solved" for convergence experiments.
    fn solved_at(&self) -> f64;
    /// Starts a new game.
    fn reset(&mut self, seed: u64);
    /// Advances one frame; returns `(reward, done)`.
    fn tick(&mut self, action: usize) -> (f64, bool);
    /// Serializes the game state into the RAM image.
    fn write_ram(&self, ram: &mut [u8; RAM_BYTES]);
}

/// Adapter exposing a [`RamGame`] as an [`Environment`] with a
/// 128-float observation (RAM bytes scaled by 1/255).
#[derive(Debug, Clone)]
pub struct RamMachine<G> {
    game: G,
    ram: [u8; RAM_BYTES],
    done: bool,
    started: bool,
}

impl<G: RamGame> RamMachine<G> {
    /// Wraps a game.
    pub fn new(game: G) -> RamMachine<G> {
        RamMachine {
            game,
            ram: [0; RAM_BYTES],
            done: false,
            started: false,
        }
    }

    /// Read-only view of the current RAM image.
    pub fn ram(&self) -> &[u8; RAM_BYTES] {
        &self.ram
    }

    /// The wrapped game.
    pub fn game(&self) -> &G {
        &self.game
    }

    fn obs(&self) -> Vec<f64> {
        self.ram.iter().map(|&b| b as f64 / 255.0).collect()
    }
}

impl<G: RamGame> Environment for RamMachine<G> {
    fn obs_dim(&self) -> usize {
        RAM_BYTES
    }

    fn n_actions(&self) -> usize {
        self.game.n_actions()
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        self.game.reset(seed);
        self.game.write_ram(&mut self.ram);
        self.done = false;
        self.started = true;
        self.obs()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(self.started, "reset() must be called before step()");
        assert!(!self.done, "step() called on terminated episode");
        assert!(
            action < self.game.n_actions(),
            "{} action {action} out of range",
            self.game.name()
        );
        let (reward, done) = self.game.tick(action);
        self.game.write_ram(&mut self.ram);
        self.done = done;
        Step {
            obs: self.obs(),
            reward,
            done,
        }
    }

    fn name(&self) -> &'static str {
        self.game.name()
    }

    fn solved_at(&self) -> f64 {
        self.game.solved_at()
    }
}

/// Fills `ram[from..]` with pseudo-random bytes derived from `state_hash`,
/// emulating the opaque scratch bytes of real 2600 RAM. The filler varies
/// with game state but is fully deterministic.
pub(crate) fn fill_opaque(ram: &mut [u8; RAM_BYTES], from: usize, state_hash: u64) {
    let mut h = state_hash;
    for (i, byte) in ram.iter_mut().enumerate().skip(from) {
        if i % 8 == 0 {
            h = splitmix64(h ^ i as u64);
        }
        *byte = (h >> ((i % 8) * 8)) as u8;
    }
}

pub(crate) mod rng {
    //! Local copy of the splitmix64 mixer (kept dependency-free).
    pub(crate) fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        frames: u32,
    }

    impl RamGame for Counter {
        fn name(&self) -> &'static str {
            "Counter-ram-v0"
        }
        fn n_actions(&self) -> usize {
            2
        }
        fn solved_at(&self) -> f64 {
            10.0
        }
        fn reset(&mut self, _seed: u64) {
            self.frames = 0;
        }
        fn tick(&mut self, action: usize) -> (f64, bool) {
            self.frames += 1;
            (action as f64, self.frames >= 5)
        }
        fn write_ram(&self, ram: &mut [u8; RAM_BYTES]) {
            ram[0] = self.frames as u8;
            fill_opaque(ram, 1, self.frames as u64);
        }
    }

    #[test]
    fn adapter_normalizes_bytes() {
        let mut m = RamMachine::new(Counter { frames: 0 });
        let obs = m.reset(1);
        assert_eq!(obs.len(), RAM_BYTES);
        assert!(obs.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn adapter_terminates_with_game() {
        let mut m = RamMachine::new(Counter { frames: 0 });
        m.reset(1);
        let mut steps = 0;
        loop {
            let s = m.step(1);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, 5);
    }

    #[test]
    fn opaque_fill_changes_with_state() {
        let mut a = [0u8; RAM_BYTES];
        let mut b = [0u8; RAM_BYTES];
        fill_opaque(&mut a, 8, 1);
        fill_opaque(&mut b, 8, 2);
        assert_ne!(a[8..], b[8..]);
        assert_eq!(a[..8], [0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_action_panics() {
        let mut m = RamMachine::new(Counter { frames: 0 });
        m.reset(1);
        m.step(7);
    }
}
