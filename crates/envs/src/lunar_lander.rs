//! LunarLander-v2: land a two-legged craft on a pad using three engines.
//!
//! This is a simplified rigid-body implementation of gym's Box2D
//! environment, built around the exact reward rubric the CLAN paper
//! describes (§III-C):
//!
//! > "moving from the top of the screen to the landing pad awards between
//! > 100-140 points and moving away from the landing pad deducts points.
//! > Landing successfully or crashing ends the episode awarding +100 and
//! > -100 points respectively. Each leg touching the ground is awarded
//! > +10 points and using the main engine adds a penalty of -0.3 points
//! > per frame."
//!
//! The approach shaping is gym's potential function
//! `-100·dist - 100·speed - 100·|θ| + 10·legs`, rewarded as deltas, which
//! reproduces the 100–140-point descent credit. Contact dynamics are
//! kinematic (no Box2D), which is irrelevant to the paper's systems
//! results — LunarLander serves as the *medium* workload (8 obs,
//! 4 actions) and as the accuracy testbed for asynchronous speciation.

use crate::{Environment, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DT: f64 = 0.04;
/// Landing pad half-width; legs inside ±this at touchdown count as on-pad.
const PAD_HALF_WIDTH: f64 = 0.25;
/// Out-of-bounds limit.
const X_LIMIT: f64 = 1.5;
/// Vertical speed below which touchdown is survivable.
const SAFE_VY: f64 = 0.25;
/// Lateral speed below which touchdown is survivable.
const SAFE_VX: f64 = 0.25;
/// Tilt below which touchdown is survivable.
const SAFE_THETA: f64 = 0.30;
/// Altitude below which upright slow flight counts as leg contact.
const LEG_CONTACT_ALT: f64 = 0.08;

/// Physical parameters of the lander.
///
/// Defaults are tuned so an unpowered drop from the start altitude crashes
/// while a proportional controller lands within the paper's 200-step cap.
/// Changing `gravity`/`wind` models a deployment-environment shift for the
/// continuous-learning loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanderParams {
    /// Downward gravitational acceleration (default 0.30 units/s²).
    pub gravity: f64,
    /// Main-engine acceleration along the body axis (default 0.60).
    pub main_engine_accel: f64,
    /// Side-engine lateral acceleration (default 0.08).
    pub side_engine_accel: f64,
    /// Side-engine angular acceleration (default 1.6 rad/s²).
    pub side_engine_torque: f64,
    /// Constant lateral wind acceleration (default 0.0).
    pub wind: f64,
}

impl Default for LanderParams {
    fn default() -> Self {
        LanderParams {
            gravity: 0.30,
            main_engine_accel: 0.75,
            side_engine_accel: 0.08,
            side_engine_torque: 1.6,
            wind: 0.0,
        }
    }
}

/// The lunar-lander environment.
#[derive(Debug, Clone, Default)]
pub struct LunarLander {
    params: LanderParams,
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    theta: f64,
    omega: f64,
    leg_left: bool,
    leg_right: bool,
    prev_shaping: Option<f64>,
    done: bool,
    started: bool,
}

impl LunarLander {
    /// Creates an environment; call [`Environment::reset`] before stepping.
    pub fn new() -> LunarLander {
        LunarLander::default()
    }

    /// Creates an environment with non-standard physics.
    pub fn with_params(params: LanderParams) -> LunarLander {
        LunarLander {
            params,
            ..LunarLander::default()
        }
    }

    /// The physical parameters in force.
    pub fn params(&self) -> LanderParams {
        self.params
    }

    fn obs(&self) -> Vec<f64> {
        vec![
            self.x,
            self.y,
            self.vx,
            self.vy,
            self.theta,
            self.omega,
            if self.leg_left { 1.0 } else { 0.0 },
            if self.leg_right { 1.0 } else { 0.0 },
        ]
    }

    /// Gym's potential function; rewards are its per-step deltas.
    fn shaping(&self) -> f64 {
        let legs = u8::from(self.leg_left) + u8::from(self.leg_right);
        -100.0 * (self.x * self.x + self.y * self.y).sqrt()
            - 100.0 * (self.vx * self.vx + self.vy * self.vy).sqrt()
            - 100.0 * self.theta.abs()
            + 10.0 * legs as f64
    }
}

impl Environment for LunarLander {
    fn obs_dim(&self) -> usize {
        8
    }

    fn n_actions(&self) -> usize {
        4
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.x = rng.gen_range(-0.6..0.6);
        self.y = 1.30;
        self.vx = rng.gen_range(-0.25..0.25);
        self.vy = rng.gen_range(-0.15..0.0);
        self.theta = rng.gen_range(-0.12..0.12);
        self.omega = 0.0;
        self.leg_left = false;
        self.leg_right = false;
        self.done = false;
        self.started = true;
        self.prev_shaping = Some(self.shaping());
        self.obs()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(self.started, "reset() must be called before step()");
        assert!(!self.done, "step() called on terminated episode");
        assert!(action < 4, "lunar-lander action {action} out of range");

        let p = self.params;
        let mut ax = p.wind;
        let mut ay = -p.gravity;
        let mut fuel_cost = 0.0;
        match action {
            0 => {}
            1 => {
                // Left orientation engine: positive torque, slight +x push.
                self.omega += p.side_engine_torque * DT;
                ax += p.side_engine_accel;
                fuel_cost = 0.03;
            }
            2 => {
                // Main engine: thrust along the body-up axis.
                ax += -p.main_engine_accel * self.theta.sin();
                ay += p.main_engine_accel * self.theta.cos();
                fuel_cost = 0.3;
            }
            3 => {
                // Right orientation engine: negative torque, slight -x push.
                self.omega -= p.side_engine_torque * DT;
                ax -= p.side_engine_accel;
                fuel_cost = 0.03;
            }
            _ => unreachable!(),
        }

        self.vx += ax * DT;
        self.vy += ay * DT;
        self.x += self.vx * DT;
        self.y += self.vy * DT;
        self.omega *= 0.99;
        self.theta += self.omega * DT;

        // Leg contact: low, slow, upright flight touches legs down.
        if self.y <= LEG_CONTACT_ALT && self.theta.abs() < SAFE_THETA {
            if self.theta <= 0.02 {
                self.leg_left = true;
            }
            if self.theta >= -0.02 {
                self.leg_right = true;
            }
        }

        // Shaped approach reward (delta of the potential) minus fuel.
        let shaping = self.shaping();
        let mut reward =
            shaping - self.prev_shaping.expect("reset initializes shaping") - fuel_cost;
        self.prev_shaping = Some(shaping);

        // Terminal conditions.
        if self.x.abs() > X_LIMIT {
            self.done = true;
            reward += -100.0;
        } else if self.y <= 0.0 {
            self.done = true;
            let gentle = self.vy.abs() <= SAFE_VY
                && self.vx.abs() <= SAFE_VX
                && self.theta.abs() <= SAFE_THETA;
            let on_pad = self.x.abs() <= PAD_HALF_WIDTH;
            reward += if gentle && on_pad { 100.0 } else { -100.0 };
        }

        Step {
            obs: self.obs(),
            reward,
            done: self.done,
        }
    }

    fn name(&self) -> &'static str {
        "LunarLander-v2"
    }

    fn solved_at(&self) -> f64 {
        200.0
    }
}

/// Gym-style proportional landing controller, used by tests and examples
/// as a reference "expert" policy.
pub fn heuristic_policy(obs: &[f64]) -> usize {
    let (x, y, vx, vy, theta, omega) = (obs[0], obs[1], obs[2], obs[3], obs[4], obs[5]);
    let legs = obs[6] + obs[7];

    let angle_targ = (0.5 * x + 1.0 * vx).clamp(-0.35, 0.35);
    let mut angle_todo = (angle_targ - theta) * 3.0 - omega * 1.5;
    // Target descent speed grows with altitude: touch down at ~0.08/s.
    let vy_target = -(0.08 + 0.5 * y.max(0.0));
    let mut hover_todo = (vy_target - vy) * 2.0;
    if legs > 0.0 {
        angle_todo = 0.0;
        hover_todo = -vy * 2.0;
    }
    if hover_todo > angle_todo.abs() && hover_todo > 0.05 {
        2
    } else if angle_todo < -0.07 {
        3
    } else if angle_todo > 0.07 {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_policy(seed: u64, policy: impl Fn(&[f64]) -> usize) -> (f64, bool, Vec<f64>) {
        let mut env = LunarLander::new();
        let mut obs = env.reset(seed);
        let mut total = 0.0;
        for _ in 0..400 {
            let s = env.step(policy(&obs));
            total += s.reward;
            obs = s.obs;
            if s.done {
                return (total, true, obs);
            }
        }
        (total, false, obs)
    }

    #[test]
    fn obs_has_eight_dims() {
        let mut env = LunarLander::new();
        assert_eq!(env.reset(1).len(), 8);
        assert_eq!(env.obs_dim(), 8);
        assert_eq!(env.n_actions(), 4);
    }

    #[test]
    fn free_fall_crashes_with_penalty() {
        let (total, done, _) = run_policy(2, |_| 0);
        assert!(done, "free fall must hit the ground");
        assert!(total < -50.0, "crash should be penalized, got {total}");
    }

    #[test]
    fn heuristic_lands_positive_score() {
        let mut successes = 0;
        let mut total_score = 0.0;
        for seed in 0..10 {
            let (score, done, _) = run_policy(seed, heuristic_policy);
            total_score += score;
            if done && score > 0.0 {
                successes += 1;
            }
        }
        assert!(
            successes >= 6,
            "heuristic should usually land: {successes}/10, avg {}",
            total_score / 10.0
        );
    }

    #[test]
    fn approach_shaping_awards_descent() {
        // Descending toward the pad under the heuristic accrues positive
        // shaping before touchdown (the paper's 100-140 points).
        let mut env = LunarLander::new();
        let mut obs = env.reset(3);
        let mut shaped = 0.0;
        for _ in 0..400 {
            let s = env.step(heuristic_policy(&obs));
            obs = s.obs;
            if s.done {
                // exclude the terminal ±100
                break;
            }
            shaped += s.reward;
        }
        assert!(shaped > 30.0, "approach should be rewarded, got {shaped}");
    }

    #[test]
    fn main_engine_fuel_penalty() {
        let mut env = LunarLander::new();
        env.reset(4);
        // Compare reward of identical states with/without engine: run two
        // copies one step.
        let mut env2 = env.clone();
        let r_noop = env.step(0).reward;
        let r_main = env2.step(2).reward;
        // The main engine decelerates descent (helping shaping) but burns
        // -0.3 fuel; at step one from identical state the fuel penalty must
        // appear in the difference of shaping-adjusted rewards.
        assert!(
            r_main < r_noop + 5.0,
            "engine use must carry its fuel penalty"
        );
    }

    #[test]
    fn out_of_bounds_terminates() {
        let mut env = LunarLander::new();
        env.reset(5);
        let mut done = false;
        for _ in 0..2000 {
            let s = env.step(1); // keep pushing right and spinning
            if s.done {
                done = true;
                break;
            }
        }
        assert!(done, "sideways burn must leave the field or crash");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LunarLander::new();
        let mut b = LunarLander::new();
        assert_eq!(a.reset(6), b.reset(6));
        for _ in 0..100 {
            let (sa, sb) = (a.step(2), b.step(2));
            assert_eq!(sa, sb);
            if sa.done {
                break;
            }
        }
    }

    #[test]
    fn leg_contact_sets_flags() {
        let mut env = LunarLander::new();
        let mut obs = env.reset(7);
        for _ in 0..400 {
            let s = env.step(heuristic_policy(&obs));
            obs = s.obs;
            if s.done {
                break;
            }
        }
        // After a heuristic landing, at least one leg flag should have set.
        // (Crash landings may skip contact; accept either but require the
        // flags to be well-formed.)
        assert!(obs[6] == 0.0 || obs[6] == 1.0);
        assert!(obs[7] == 0.0 || obs[7] == 1.0);
    }

    #[test]
    fn higher_gravity_crashes_heuristic_less_often_than_free_fall() {
        let params = LanderParams {
            gravity: 0.5,
            ..LanderParams::default()
        };
        let mut env = LunarLander::with_params(params);
        let mut obs = env.reset(8);
        let mut total = 0.0;
        for _ in 0..400 {
            let s = env.step(heuristic_policy(&obs));
            total += s.reward;
            obs = s.obs;
            if s.done {
                break;
            }
        }
        let (free_fall, _, _) = {
            let mut env = LunarLander::with_params(params);
            let mut obs = env.reset(8);
            let mut tot = 0.0;
            let mut fin = false;
            for _ in 0..400 {
                let s = env.step(0);
                tot += s.reward;
                obs = s.obs;
                if s.done {
                    fin = true;
                    break;
                }
            }
            (tot, fin, obs)
        };
        assert!(total > free_fall, "controller should beat free fall");
    }
}
