//! Episode runner: the fitness-evaluation loop shared by every CLAN
//! configuration.
//!
//! The paper limits every environment to 200 timesteps per inference pass
//! (§III-B), terminating early on success or failure; fitness is the total
//! accumulated reward. Figures 8–10 additionally use a *single-step* mode
//! (`max_steps = 1`) that evaluates each genome for one timestep only,
//! modeling real-world deployments where repeated multi-step inference
//! per generation is not available.

use crate::Environment;

/// Result of running one episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeOutcome {
    /// Total accumulated reward (the genome's fitness).
    pub total_reward: f64,
    /// Timesteps executed (= network activations performed).
    pub steps: u64,
    /// Whether the environment terminated on its own (vs. the step cap).
    pub terminated: bool,
}

/// Runs one episode of `env` under `policy`, capped at `max_steps`.
///
/// The policy maps an observation to a discrete action index.
///
/// # Panics
///
/// Panics if `max_steps` is zero or the policy returns an out-of-range
/// action (the environment enforces the latter).
pub fn run_episode<F>(
    env: &mut dyn Environment,
    seed: u64,
    max_steps: u64,
    mut policy: F,
) -> EpisodeOutcome
where
    F: FnMut(&[f64]) -> usize,
{
    assert!(max_steps > 0, "an episode needs at least one step");
    let mut obs = env.reset(seed);
    let mut total_reward = 0.0;
    let mut steps = 0;
    let mut terminated = false;
    while steps < max_steps {
        let action = policy(&obs);
        let step = env.step(action);
        total_reward += step.reward;
        steps += 1;
        obs = step.obs;
        if step.done {
            terminated = true;
            break;
        }
    }
    EpisodeOutcome {
        total_reward,
        steps,
        terminated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartpole::CartPole;
    use crate::mountain_car::MountainCar;

    #[test]
    fn cap_enforced() {
        let mut env = CartPole::new();
        let out = run_episode(&mut env, 1, 10, |obs| usize::from(obs[2] > 0.0));
        assert!(out.steps <= 10);
    }

    #[test]
    fn early_termination_reported() {
        let mut env = CartPole::new();
        let out = run_episode(&mut env, 2, 500, |_| 1);
        assert!(out.terminated, "constant push must topple early");
        assert!(out.steps < 500);
        assert_eq!(out.total_reward, out.steps as f64);
    }

    #[test]
    fn single_step_mode() {
        let mut env = MountainCar::new();
        let out = run_episode(&mut env, 3, 1, |_| 1);
        assert_eq!(out.steps, 1);
        assert_eq!(out.total_reward, -1.0);
    }

    #[test]
    fn policy_sees_fresh_observations() {
        let mut env = CartPole::new();
        let mut seen = Vec::new();
        run_episode(&mut env, 4, 5, |obs| {
            seen.push(obs.to_vec());
            0
        });
        assert_eq!(seen.len(), 5);
        assert_ne!(seen[0], seen[4], "state must evolve");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let mut env = CartPole::new();
        run_episode(&mut env, 5, 0, |_| 0);
    }
}
