//! # clan-envs — gym-like reinforcement-learning environments
//!
//! The CLAN paper evaluates on a suite of OpenAI-gym workloads chosen for
//! size: *small* (Cartpole-v0, MountainCar-v0), *medium* (LunarLander-v2)
//! and *large* (Atari RAM games: Airraid, Amidar, Alien). This crate
//! implements the suite from scratch:
//!
//! - [`CartPole`] and [`MountainCar`] follow the canonical classic-control
//!   dynamics exactly.
//! - [`LunarLander`] is a simplified rigid-body lander implementing the
//!   paper's reward rubric (±100 land/crash, +10 per leg, −0.3 per frame
//!   of main engine, shaped approach reward) without a Box2D dependency.
//! - The Atari RAM games are **synthetic surrogates**: deterministic,
//!   seeded "RAM machine" games with the real observation width (128
//!   bytes), realistic action counts, and incremental scoring. The paper
//!   uses Atari purely as a *large workload* (big input layer ⇒ big
//!   genomes ⇒ heavy inference), which these preserve; see `DESIGN.md`.
//!
//! Every environment is deterministic given the seed passed to
//! [`Environment::reset`], which keeps distributed CLAN runs reproducible.
//!
//! ```
//! use clan_envs::{Environment, Workload};
//!
//! let mut env = Workload::CartPole.make();
//! let obs = env.reset(7);
//! assert_eq!(obs.len(), env.obs_dim());
//! let step = env.step(0);
//! assert!(step.reward > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airraid;
pub mod alien;
pub mod amidar;
pub mod atari_ram;
pub mod cartpole;
pub mod episode;
pub mod lunar_lander;
pub mod mountain_car;
pub mod suite;

pub use atari_ram::{RamGame, RamMachine, RAM_BYTES};
pub use cartpole::CartPole;
pub use episode::{run_episode, EpisodeOutcome};
pub use lunar_lander::LunarLander;
pub use mountain_car::MountainCar;
pub use suite::{Workload, WorkloadClass};

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Observation after the step.
    pub obs: Vec<f64>,
    /// Reward earned by the step.
    pub reward: f64,
    /// Whether the episode terminated (success or failure).
    pub done: bool,
}

/// A reinforcement-learning environment with a discrete action space.
///
/// The interface mirrors OpenAI gym's `reset`/`step` loop. Environments
/// must be deterministic given the `seed` passed to [`reset`], so that the
/// same genome evaluated on two different agents receives the same fitness
/// — a requirement for CLAN's distributed-equals-serial property.
///
/// [`reset`]: Environment::reset
pub trait Environment: Send {
    /// Dimension of the observation vector.
    fn obs_dim(&self) -> usize;

    /// Number of discrete actions.
    fn n_actions(&self) -> usize;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self, seed: u64) -> Vec<f64>;

    /// Advances one timestep.
    ///
    /// # Panics
    ///
    /// Implementations panic if `action >= n_actions()` or if called
    /// before [`reset`](Environment::reset) / after termination.
    fn step(&mut self, action: usize) -> Step;

    /// Human-readable gym-style name (e.g. `"Cartpole-v0"`).
    fn name(&self) -> &'static str;

    /// Score at or above which the task counts as solved
    /// (gym's convergence criterion, §III-C of the paper).
    fn solved_at(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_is_object_safe() {
        fn takes_dyn(_e: &dyn Environment) {}
        let mut e = CartPole::new();
        e.reset(1);
        takes_dyn(&e);
    }
}
