//! Alien-ram-v0 surrogate: collect dots in a maze while aliens chase.
//!
//! A 16x12 walled maze seeded deterministically. The player collects dots
//! (+10 each); three aliens chase greedily. The full 18-action Atari set
//! is exposed (8 directions, fire, and fire+direction combos); firing
//! torches an adjacent alien (+50, it respawns at its corner after a
//! delay). Losing all three lives ends the episode.

use crate::atari_ram::{fill_opaque, rng::splitmix64, RamGame, RamMachine, RAM_BYTES};

const COLS: i32 = 16;
const ROWS: i32 = 12;
const N_ALIENS: usize = 3;
const RESPAWN_FRAMES: u32 = 30;
/// Aliens move on even frames only (half player speed).
const ALIEN_PERIOD: u32 = 2;

#[derive(Debug, Clone, Copy)]
struct Alien {
    x: i32,
    y: i32,
    home: (i32, i32),
    respawn_in: u32,
}

/// Game state for the Alien surrogate.
#[derive(Debug, Clone)]
pub struct AlienGame {
    player: (i32, i32),
    walls: [[bool; COLS as usize]; ROWS as usize],
    dots: [[bool; COLS as usize]; ROWS as usize],
    dots_left: u32,
    aliens: [Alien; N_ALIENS],
    lives: u8,
    score: u32,
    frame: u32,
    rng_state: u64,
    done: bool,
}

impl AlienGame {
    /// Creates the game in an unstarted state.
    pub fn new() -> AlienGame {
        AlienGame {
            player: (1, 1),
            walls: [[false; COLS as usize]; ROWS as usize],
            dots: [[false; COLS as usize]; ROWS as usize],
            dots_left: 0,
            aliens: [Alien {
                x: 0,
                y: 0,
                home: (0, 0),
                respawn_in: 0,
            }; N_ALIENS],
            lives: 3,
            score: 0,
            frame: 0,
            rng_state: 0,
            done: false,
        }
    }

    /// Current score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Wraps the game in a [`RamMachine`] environment.
    pub fn environment() -> RamMachine<AlienGame> {
        RamMachine::new(AlienGame::new())
    }

    fn next_u64(&mut self) -> u64 {
        self.rng_state = splitmix64(self.rng_state);
        self.rng_state
    }

    fn build_maze(&mut self) {
        // Border walls plus pillars at even-even interior coordinates,
        // with a few seeded extra wall segments.
        for y in 0..ROWS {
            for x in 0..COLS {
                let border = x == 0 || y == 0 || x == COLS - 1 || y == ROWS - 1;
                let pillar = x % 2 == 0 && y % 2 == 0;
                self.walls[y as usize][x as usize] = border || pillar;
            }
        }
        for _ in 0..6 {
            let r = self.next_u64();
            let x = 1 + (r % (COLS as u64 - 2)) as i32;
            let y = 1 + ((r >> 16) % (ROWS as u64 - 2)) as i32;
            // Never wall the player start or alien corners.
            let reserved = [(1, 1), (COLS - 2, 1), (1, ROWS - 2), (COLS - 2, ROWS - 2)];
            if !reserved.contains(&(x, y)) {
                self.walls[y as usize][x as usize] = true;
            }
        }
        self.dots_left = 0;
        for y in 0..ROWS {
            for x in 0..COLS {
                let open = !self.walls[y as usize][x as usize];
                let is_start = (x, y) == (1, 1);
                self.dots[y as usize][x as usize] = open && !is_start;
                if open && !is_start {
                    self.dots_left += 1;
                }
            }
        }
    }

    fn open(&self, x: i32, y: i32) -> bool {
        (0..COLS).contains(&x) && (0..ROWS).contains(&y) && !self.walls[y as usize][x as usize]
    }

    /// Moves `(x, y)` by `(dx, dy)` with wall sliding: diagonals degrade
    /// to whichever axis is open.
    fn slide(&self, (x, y): (i32, i32), (dx, dy): (i32, i32)) -> (i32, i32) {
        if self.open(x + dx, y + dy) {
            (x + dx, y + dy)
        } else if dx != 0 && self.open(x + dx, y) {
            (x + dx, y)
        } else if dy != 0 && self.open(x, y + dy) {
            (x, y + dy)
        } else {
            (x, y)
        }
    }

    fn state_hash(&self) -> u64 {
        let mut h = splitmix64(
            self.frame as u64 ^ ((self.score as u64) << 16) ^ ((self.lives as u64) << 40),
        );
        h = splitmix64(h ^ (self.player.0 as u64) ^ ((self.player.1 as u64) << 8));
        for a in &self.aliens {
            h = splitmix64(h ^ (a.x as u64) ^ ((a.y as u64) << 8) ^ ((a.respawn_in as u64) << 16));
        }
        h ^ self.dots_left as u64
    }
}

impl Default for AlienGame {
    fn default() -> Self {
        AlienGame::new()
    }
}

/// Direction component of the 18-action Atari set.
///
/// 0 noop, 1 fire, 2 up, 3 right, 4 left, 5 down, 6 up-right, 7 up-left,
/// 8 down-right, 9 down-left, 10-17 = 2-9 with fire.
fn decode_action(action: usize) -> ((i32, i32), bool) {
    let (dir, fire) = match action {
        0 => (0, false),
        1 => (0, true),
        2..=9 => (action - 1, false),
        10..=17 => (action - 9, true),
        _ => unreachable!(),
    };
    let delta = match dir {
        0 => (0, 0),
        1 => (0, -1),
        2 => (1, 0),
        3 => (-1, 0),
        4 => (0, 1),
        5 => (1, -1),
        6 => (-1, -1),
        7 => (1, 1),
        8 => (-1, 1),
        _ => unreachable!(),
    };
    (delta, fire)
}

impl RamGame for AlienGame {
    fn name(&self) -> &'static str {
        "Alien-ram-v0"
    }

    fn n_actions(&self) -> usize {
        18
    }

    fn solved_at(&self) -> f64 {
        500.0
    }

    fn reset(&mut self, seed: u64) {
        *self = AlienGame::new();
        self.rng_state = splitmix64(seed ^ 0xA11E7);
        self.build_maze();
        let corners = [(COLS - 2, 1), (1, ROWS - 2), (COLS - 2, ROWS - 2)];
        for (i, &home) in corners.iter().enumerate() {
            self.aliens[i] = Alien {
                x: home.0,
                y: home.1,
                home,
                respawn_in: 0,
            };
        }
    }

    fn tick(&mut self, action: usize) -> (f64, bool) {
        debug_assert!(!self.done);
        self.frame += 1;
        let mut reward = 0.0;
        let (delta, fire) = decode_action(action);

        // Flame: torch aliens in the 4-neighborhood.
        if fire {
            for i in 0..N_ALIENS {
                let a = self.aliens[i];
                if a.respawn_in == 0
                    && (a.x - self.player.0).abs() + (a.y - self.player.1).abs() <= 1
                {
                    self.aliens[i].respawn_in = RESPAWN_FRAMES;
                    self.score += 50;
                    reward += 50.0;
                }
            }
        }

        // Player movement + dot collection.
        self.player = self.slide(self.player, delta);
        let (px, py) = self.player;
        if self.dots[py as usize][px as usize] {
            self.dots[py as usize][px as usize] = false;
            self.dots_left -= 1;
            self.score += 10;
            reward += 10.0;
        }
        if self.dots_left == 0 {
            // Cleared board: refill (new deterministic wave).
            self.build_maze();
        }

        // Aliens: respawn countdown, then greedy chase at half speed.
        if self.frame.is_multiple_of(ALIEN_PERIOD) {
            for i in 0..N_ALIENS {
                if self.aliens[i].respawn_in > 0 {
                    continue;
                }
                let a = self.aliens[i];
                let dx = (self.player.0 - a.x).signum();
                let dy = (self.player.1 - a.y).signum();
                let r = self.next_u64();
                let prefer_x = r & 1 == 0;
                let step = if prefer_x { (dx, 0) } else { (0, dy) };
                let alt = if prefer_x { (0, dy) } else { (dx, 0) };
                let next = {
                    let s = self.slide((a.x, a.y), step);
                    if s == (a.x, a.y) {
                        self.slide((a.x, a.y), alt)
                    } else {
                        s
                    }
                };
                self.aliens[i].x = next.0;
                self.aliens[i].y = next.1;
            }
        }
        for i in 0..N_ALIENS {
            if self.aliens[i].respawn_in > 0 {
                self.aliens[i].respawn_in -= 1;
                if self.aliens[i].respawn_in == 0 {
                    let home = self.aliens[i].home;
                    self.aliens[i].x = home.0;
                    self.aliens[i].y = home.1;
                }
            }
        }

        // Capture check.
        if self
            .aliens
            .iter()
            .any(|a| a.respawn_in == 0 && (a.x, a.y) == self.player)
        {
            self.lives = self.lives.saturating_sub(1);
            self.player = (1, 1);
            for i in 0..N_ALIENS {
                let home = self.aliens[i].home;
                self.aliens[i].x = home.0;
                self.aliens[i].y = home.1;
            }
            if self.lives == 0 {
                self.done = true;
            }
        }

        (reward, self.done)
    }

    fn write_ram(&self, ram: &mut [u8; RAM_BYTES]) {
        ram[0] = self.player.0 as u8;
        ram[1] = self.player.1 as u8;
        ram[2] = self.lives;
        ram[3] = (self.score & 0xFF) as u8;
        ram[4] = (self.score >> 8) as u8;
        ram[5] = self.dots_left as u8;
        let mut idx = 6;
        for a in &self.aliens {
            ram[idx] = a.x as u8;
            ram[idx + 1] = a.y as u8;
            ram[idx + 2] = a.respawn_in as u8;
            idx += 3;
        }
        // Dot bitmap: 192 cells -> 24 bytes.
        for y in 0..ROWS as usize {
            for x in 0..COLS as usize {
                let bit = y * COLS as usize + x;
                if self.dots[y][x] {
                    ram[idx + bit / 8] |= 1 << (bit % 8);
                } else {
                    ram[idx + bit / 8] &= !(1 << (bit % 8));
                }
            }
        }
        idx += (COLS * ROWS) as usize / 8;
        fill_opaque(ram, idx, self.state_hash());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    #[test]
    fn environment_shape() {
        let mut env = AlienGame::environment();
        let obs = env.reset(1);
        assert_eq!(obs.len(), RAM_BYTES);
        assert_eq!(env.n_actions(), 18);
        assert_eq!(env.name(), "Alien-ram-v0");
    }

    #[test]
    fn collecting_dots_scores() {
        let mut env = AlienGame::environment();
        env.reset(2);
        let mut total = 0.0;
        for t in 0..30 {
            // Sweep right then down, collecting along the way.
            let s = env.step(if t % 3 == 2 { 5 } else { 3 });
            total += s.reward;
            if s.done {
                break;
            }
        }
        assert!(total >= 10.0, "dot sweep should score, got {total}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = AlienGame::environment();
        let mut b = AlienGame::environment();
        assert_eq!(a.reset(3), b.reset(3));
        for t in 0..120 {
            let (sa, sb) = (a.step(t % 18), b.step(t % 18));
            assert_eq!(sa, sb);
            if sa.done {
                break;
            }
        }
    }

    #[test]
    fn idle_player_gets_caught() {
        let mut env = AlienGame::environment();
        env.reset(4);
        let mut done = false;
        for _ in 0..3000 {
            if env.step(0).done {
                done = true;
                break;
            }
        }
        assert!(done, "chasing aliens must catch an idle player");
    }

    #[test]
    fn player_cannot_walk_through_walls() {
        let mut env = AlienGame::environment();
        env.reset(5);
        // Walk up into the border repeatedly: y must stay >= 1.
        for _ in 0..20 {
            env.step(2);
        }
        assert!(env.ram()[1] >= 1);
        // Walk left into the border: x must stay >= 1.
        for _ in 0..20 {
            env.step(4);
        }
        assert!(env.ram()[0] >= 1);
    }

    #[test]
    fn torching_adjacent_alien_scores_fifty() {
        // Engineered scenario: wait for an alien to come adjacent, then
        // fire every frame; at some point the +50 must land.
        let mut env = AlienGame::environment();
        env.reset(6);
        let mut got_torch = false;
        for _ in 0..600 {
            let s = env.step(1); // stand and fire
            if s.reward >= 50.0 {
                got_torch = true;
                break;
            }
            if s.done {
                break;
            }
        }
        assert!(got_torch, "a chasing alien should get torched");
    }
}
