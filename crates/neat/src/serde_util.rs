//! Serde helpers: encode id-keyed maps as `(key, value)` pair lists so
//! checkpoints serialize to JSON (whose object keys must be strings).

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;

/// Serializes a `BTreeMap` as a sequence of `(K, V)` pairs.
///
/// # Errors
///
/// Propagates serializer errors.
pub fn map_as_pairs<K, V, S>(map: &BTreeMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
where
    K: Serialize,
    V: Serialize,
    S: Serializer,
{
    serializer.collect_seq(map.iter())
}

/// Deserializes a sequence of `(K, V)` pairs into a `BTreeMap`.
///
/// # Errors
///
/// Propagates deserializer errors.
pub fn pairs_as_map<'de, K, V, D>(deserializer: D) -> Result<BTreeMap<K, V>, D::Error>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    let pairs: Vec<(K, V)> = Vec::deserialize(deserializer)?;
    Ok(pairs.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Holder {
        #[serde(serialize_with = "map_as_pairs", deserialize_with = "pairs_as_map")]
        map: BTreeMap<(i64, i64), f64>,
    }

    #[test]
    fn struct_keys_round_trip_through_json() {
        let mut map = BTreeMap::new();
        map.insert((-1, 0), 1.5);
        map.insert((7, 3), -2.5);
        let h = Holder { map };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
