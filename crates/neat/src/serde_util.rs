//! Serde helpers: encode id-keyed maps as `(key, value)` pair lists so
//! checkpoints serialize to JSON (whose object keys must be strings).
//!
//! The vendored serde shim (see `shims/serde`) routes
//! `#[serde(serialize_with = "...")]` through `&T -> Value` functions and
//! `#[serde(deserialize_with = "...")]` through
//! `&Value -> Result<T, Error>` functions; these two helpers implement
//! that contract for `BTreeMap`s with structured keys.

use serde::{Deserialize, Error, Serialize, Value};
use std::collections::BTreeMap;

/// Serializes a `BTreeMap` as a sequence of `(K, V)` pairs.
pub fn map_as_pairs<K, V>(map: &BTreeMap<K, V>) -> Value
where
    K: Serialize,
    V: Serialize,
{
    Value::Seq(
        map.iter()
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

/// Deserializes a sequence of `(K, V)` pairs into a `BTreeMap`.
///
/// # Errors
///
/// Propagates element-level deserialization errors and rejects
/// non-sequence values.
pub fn pairs_as_map<K, V>(value: &Value) -> Result<BTreeMap<K, V>, Error>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    value
        .as_seq()
        .ok_or_else(|| Error::custom(format!("expected pair sequence, got {}", value.kind())))?
        .iter()
        .map(<(K, V)>::from_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Holder {
        #[serde(serialize_with = "map_as_pairs", deserialize_with = "pairs_as_map")]
        map: BTreeMap<(i64, i64), f64>,
    }

    #[test]
    fn struct_keys_round_trip_through_json() {
        let mut map = BTreeMap::new();
        map.insert((-1, 0), 1.5);
        map.insert((7, 3), -2.5);
        let h = Holder { map };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
