//! Error types for the NEAT crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running NEAT.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NeatError {
    /// A configuration field has an invalid value.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A fitness value was required but has not been assigned.
    MissingFitness {
        /// The genome whose fitness is missing.
        genome: u64,
    },
    /// A genome id was looked up but does not exist in the population.
    UnknownGenome {
        /// The id that failed to resolve.
        genome: u64,
    },
    /// The population went extinct (all species stagnated) and
    /// `reset_on_extinction` was disabled.
    Extinction,
}

impl fmt::Display for NeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeatError::InvalidConfig { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            NeatError::MissingFitness { genome } => {
                write!(f, "genome {genome} has no fitness assigned")
            }
            NeatError::UnknownGenome { genome } => {
                write!(f, "genome {genome} not found in population")
            }
            NeatError::Extinction => write!(f, "population went extinct"),
        }
    }
}

impl Error for NeatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = NeatError::InvalidConfig {
            field: "population_size",
            reason: "must be at least 2".into(),
        };
        let s = e.to_string();
        assert!(s.starts_with("invalid config"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeatError>();
    }
}
