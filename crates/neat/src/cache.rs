//! Content-addressed fitness cache: skip re-evaluating genomes whose
//! content was already scored.
//!
//! NEAT re-submits unchanged genomes for evaluation all the time — every
//! elite is copied verbatim into the next generation (under a fresh
//! [`GenomeId`](crate::GenomeId)), and crossover regularly reproduces a
//! parent gene-for-gene. When episode seeds derive from the genome's
//! *content* rather than its id (see the `clan-core` evaluator), such a
//! genome is guaranteed to replay exactly the same episodes and earn
//! exactly the same fitness — so the evaluation can be served from a
//! cache, bit-identically, without running a single environment step.
//!
//! The cache key is `(master_seed, content_hash)` where the hash is
//! [`Genome::content_hash`](crate::Genome::content_hash): stable under
//! gene insertion order, blind to id and fitness, and sensitive to every
//! gene attribute down to the last ulp. The episode plan (episodes per
//! evaluation, inference mode) is part of the seed derivation upstream,
//! so one cache instance must only ever serve one evaluation plan —
//! which is how the evaluators own their caches.
//!
//! Hits and lookups are counted in a per-generation *window* so
//! orchestrators can report a hit rate per generation (alongside the
//! speciation `distance_memo_hits`) without the counters becoming part
//! of the determinism contract.

use crate::population::Evaluation;
use serde::{Deserialize, Serialize};
// clan-lint: allow(D1, reason="lookup-only store keyed by (seed, content_hash): never iterated, so hash order cannot leak into results")
use std::collections::HashMap;

/// A cached evaluation: the outcome plus the compiled network's
/// per-activation gene cost (structure-determined, so caching it skips
/// recompilation on a hit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedEvaluation {
    /// The fitness/activation outcome, bit-identical to a fresh run.
    pub evaluation: Evaluation,
    /// Genes touched per activation by the compiled network.
    pub genes_per_activation: u64,
}

/// Content-addressed store of genome evaluations.
///
/// Keys are `(master_seed, content_hash)`; values are the full
/// [`CachedEvaluation`]. The store is bounded: when it exceeds
/// [`FitnessCache::DEFAULT_CAPACITY`] entries it is cleared wholesale
/// (eviction only ever costs wall-clock, never correctness, because a
/// miss re-derives the identical result).
#[derive(Debug, Clone, Default)]
pub struct FitnessCache {
    // clan-lint: allow(D1, reason="lookup-only: get/insert/clear, no iteration; eviction clears wholesale")
    entries: HashMap<(u64, u64), CachedEvaluation>,
    capacity: usize,
    hits_window: u64,
    lookups_window: u64,
    hits_total: u64,
    lookups_total: u64,
}

impl FitnessCache {
    /// Entry cap before the wholesale clear (~64k genomes ≈ hundreds of
    /// generations of a paper-sized population).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> FitnessCache {
        FitnessCache::with_capacity(FitnessCache::DEFAULT_CAPACITY)
    }

    /// Creates an empty cache cleared whenever it would exceed
    /// `capacity` entries.
    pub fn with_capacity(capacity: usize) -> FitnessCache {
        FitnessCache {
            // clan-lint: allow(D1, reason="lookup-only: see the field declaration above")
            entries: HashMap::new(),
            capacity: capacity.max(1),
            hits_window: 0,
            lookups_window: 0,
            hits_total: 0,
            lookups_total: 0,
        }
    }

    /// Looks up a `(master_seed, content_hash)` key, counting the lookup
    /// (and the hit, if any) in the current window.
    pub fn lookup(&mut self, master_seed: u64, content_hash: u64) -> Option<CachedEvaluation> {
        self.lookups_window += 1;
        self.lookups_total += 1;
        let found = self.entries.get(&(master_seed, content_hash)).copied();
        if found.is_some() {
            self.hits_window += 1;
            self.hits_total += 1;
        }
        found
    }

    /// Stores an evaluation under `(master_seed, content_hash)`,
    /// clearing the store first if it is full.
    pub fn insert(&mut self, master_seed: u64, content_hash: u64, cached: CachedEvaluation) {
        if self.entries.len() >= self.capacity {
            self.entries.clear();
        }
        self.entries.insert((master_seed, content_hash), cached);
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits and lookups since the last [`take_window`](Self::take_window).
    pub fn window(&self) -> (u64, u64) {
        (self.hits_window, self.lookups_window)
    }

    /// Drains the per-generation window, returning `(hits, lookups)`.
    pub fn take_window(&mut self) -> (u64, u64) {
        let w = (self.hits_window, self.lookups_window);
        self.hits_window = 0;
        self.lookups_window = 0;
        w
    }

    /// Lifetime hits across all windows.
    pub fn hits_total(&self) -> u64 {
        self.hits_total
    }

    /// Lifetime lookups across all windows.
    pub fn lookups_total(&self) -> u64 {
        self.lookups_total
    }

    /// Lifetime hit rate (`hits_total / lookups_total`), 0 before any
    /// lookup. Telemetry publishes this as the `cache.hit_rate` gauge.
    pub fn hit_rate_total(&self) -> f64 {
        if self.lookups_total == 0 {
            0.0
        } else {
            self.hits_total as f64 / self.lookups_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(fitness: f64) -> CachedEvaluation {
        CachedEvaluation {
            evaluation: Evaluation {
                fitness,
                activations: 10,
            },
            genes_per_activation: 3,
        }
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = FitnessCache::new();
        assert_eq!(c.lookup(1, 42), None);
        c.insert(1, 42, eval(5.0));
        assert_eq!(c.lookup(1, 42), Some(eval(5.0)));
        assert_eq!(c.window(), (1, 2));
        assert_eq!(c.take_window(), (1, 2));
        assert_eq!(c.window(), (0, 0));
        assert_eq!(c.hits_total(), 1);
        assert_eq!(c.lookups_total(), 2);
        assert!((c.hit_rate_total() - 0.5).abs() < 1e-12);
        assert_eq!(FitnessCache::new().hit_rate_total(), 0.0);
    }

    #[test]
    fn master_seed_partitions_the_store() {
        let mut c = FitnessCache::new();
        c.insert(1, 42, eval(5.0));
        assert_eq!(c.lookup(2, 42), None, "other master seed must miss");
        assert!(c.lookup(1, 42).is_some());
    }

    #[test]
    fn capacity_clears_wholesale() {
        let mut c = FitnessCache::with_capacity(2);
        c.insert(1, 1, eval(1.0));
        c.insert(1, 2, eval(2.0));
        assert_eq!(c.len(), 2);
        c.insert(1, 3, eval(3.0));
        assert_eq!(c.len(), 1, "full store is cleared before insert");
        assert!(c.lookup(1, 3).is_some());
        assert!(c.lookup(1, 1).is_none());
    }
}
