//! Node activation and aggregation functions.
//!
//! NEAT genomes attach an [`Activation`] and an [`Aggregation`] to every
//! node gene; mutation may swap them. The set here mirrors the functions
//! shipped by `neat-python`, which the CLAN paper used.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar activation function applied to a node's aggregated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Steepened logistic sigmoid, `1 / (1 + e^(-4.9 x))`, the NEAT default.
    #[default]
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (pass-through).
    Identity,
    /// Sine.
    Sin,
    /// Gaussian bump `e^(-5 x^2)` (clamped input).
    Gauss,
    /// Identity clamped to `[-1, 1]`.
    Clamped,
    /// Absolute value.
    Abs,
}

impl Activation {
    /// All supported activations, in a stable order used by mutation.
    pub const ALL: [Activation; 8] = [
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Relu,
        Activation::Identity,
        Activation::Sin,
        Activation::Gauss,
        Activation::Clamped,
        Activation::Abs,
    ];

    /// Applies the function to `x`.
    ///
    /// Inputs are pre-scaled exactly as `neat-python` does (e.g. the
    /// sigmoid multiplies by 4.9 and clamps to avoid overflow).
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => {
                let z = (4.9 * x).clamp(-60.0, 60.0);
                1.0 / (1.0 + (-z).exp())
            }
            Activation::Tanh => (2.5 * x).clamp(-60.0, 60.0).tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
            Activation::Sin => (5.0 * x).clamp(-60.0, 60.0).sin(),
            Activation::Gauss => {
                let z = x.clamp(-3.4, 3.4);
                (-5.0 * z * z).exp()
            }
            Activation::Clamped => x.clamp(-1.0, 1.0),
            Activation::Abs => x.abs(),
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
            Activation::Sin => "sin",
            Activation::Gauss => "gauss",
            Activation::Clamped => "clamped",
            Activation::Abs => "abs",
        };
        f.write_str(name)
    }
}

/// Function combining a node's weighted inputs into a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Aggregation {
    /// Sum of weighted inputs (the NEAT default).
    #[default]
    Sum,
    /// Product of weighted inputs.
    Product,
    /// Maximum weighted input.
    Max,
    /// Minimum weighted input.
    Min,
    /// Arithmetic mean of weighted inputs.
    Mean,
}

impl Aggregation {
    /// All supported aggregations, in a stable order used by mutation.
    pub const ALL: [Aggregation; 5] = [
        Aggregation::Sum,
        Aggregation::Product,
        Aggregation::Max,
        Aggregation::Min,
        Aggregation::Mean,
    ];

    /// Combines `inputs` into one value. Empty input yields `0.0`.
    pub fn apply(self, inputs: &[f64]) -> f64 {
        if inputs.is_empty() {
            return 0.0;
        }
        match self {
            Aggregation::Sum => inputs.iter().sum(),
            Aggregation::Product => inputs.iter().product(),
            Aggregation::Max => inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => inputs.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Mean => inputs.iter().sum::<f64>() / inputs.len() as f64,
        }
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Aggregation::Sum => "sum",
            Aggregation::Product => "product",
            Aggregation::Max => "max",
            Aggregation::Min => "min",
            Aggregation::Mean => "mean",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(100.0) <= 1.0);
        assert!(Activation::Sigmoid.apply(-100.0) >= 0.0);
        assert!(Activation::Sigmoid.apply(2.0) > 0.99);
    }

    #[test]
    fn tanh_saturates() {
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
        assert!(Activation::Tanh.apply(-100.0) >= -1.0);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn clamped_bounds() {
        assert_eq!(Activation::Clamped.apply(7.0), 1.0);
        assert_eq!(Activation::Clamped.apply(-7.0), -1.0);
        assert_eq!(Activation::Clamped.apply(0.25), 0.25);
    }

    #[test]
    fn gauss_peak_at_zero() {
        assert!((Activation::Gauss.apply(0.0) - 1.0).abs() < 1e-12);
        assert!(Activation::Gauss.apply(1.0) < Activation::Gauss.apply(0.1));
    }

    #[test]
    fn all_activations_finite_over_wide_domain() {
        for a in Activation::ALL {
            for i in -100..=100 {
                let x = i as f64 * 10.0;
                assert!(a.apply(x).is_finite(), "{a} not finite at {x}");
            }
        }
    }

    #[test]
    fn aggregation_basics() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(Aggregation::Sum.apply(&xs), 6.0);
        assert_eq!(Aggregation::Product.apply(&xs), 6.0);
        assert_eq!(Aggregation::Max.apply(&xs), 3.0);
        assert_eq!(Aggregation::Min.apply(&xs), 1.0);
        assert_eq!(Aggregation::Mean.apply(&xs), 2.0);
    }

    #[test]
    fn aggregation_empty_is_zero() {
        for agg in Aggregation::ALL {
            assert_eq!(agg.apply(&[]), 0.0, "{agg}");
        }
    }

    #[test]
    fn display_round_trip_is_lowercase() {
        for a in Activation::ALL {
            assert_eq!(a.to_string(), a.to_string().to_lowercase());
        }
        for a in Aggregation::ALL {
            assert_eq!(a.to_string(), a.to_string().to_lowercase());
        }
    }
}
