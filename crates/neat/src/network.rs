//! Phenotype: a feed-forward network compiled from a [`Genome`].
//!
//! Compilation resolves the genome's gene graph into an indexed,
//! topologically ordered evaluation plan once, so that the (many) per-step
//! activations during an episode are cheap. Only nodes *required* for the
//! outputs are evaluated, mirroring `neat-python`.
//!
//! # The inference hot path
//!
//! Evaluation is the dominant compute block of a CLAN generation (the
//! paper's Figure 3), and a 200-step episode calls the network 200 times.
//! Two API tiers serve that loop:
//!
//! - [`activate`](FeedForwardNetwork::activate) /
//!   [`act_argmax`](FeedForwardNetwork::act_argmax) — convenient,
//!   allocation-per-call-free *internally* (they reuse a thread-local
//!   [`Scratch`]), `activate` still returns an owned `Vec`.
//! - [`activate_into`](FeedForwardNetwork::activate_into) /
//!   [`act_argmax_with`](FeedForwardNetwork::act_argmax_with) — the
//!   zero-allocation tier: the caller owns a [`Scratch`] whose buffers are
//!   reused across steps, episodes, and networks. After the buffers have
//!   grown to a network's size once, no heap allocation happens per step.
//!
//! Compilation itself is also on the per-generation hot path (every
//! genome recompiles every generation), so it runs entirely on indexed
//! `Vec` passes over the genome's sorted gene maps — no intermediate
//! `BTreeMap`/`BTreeSet` traffic.

use crate::activation::{Activation, Aggregation};
use crate::config::NeatConfig;
use crate::gene::{GenomeId, NodeId};
use crate::genome::Genome;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// One node's compiled evaluation plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct EvalNode {
    pub(crate) bias: f64,
    pub(crate) response: f64,
    pub(crate) activation: Activation,
    pub(crate) aggregation: Aggregation,
    /// `(value_slot, weight)` pairs for incoming enabled connections.
    pub(crate) incoming: Vec<(usize, f64)>,
}

/// Caller-owned, reusable buffers for allocation-free activation.
///
/// A `Scratch` grows to the largest network it has served and then stays
/// at that size, so a per-worker (or per-episode-loop) instance makes
/// every subsequent [`FeedForwardNetwork::activate_into`] call free of
/// heap allocation. Buffers are wiped per call; no state leaks between
/// activations, so one `Scratch` may serve many different networks.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Value slots: inputs first, then nodes in topological order.
    values: Vec<f64>,
    /// Per-node weighted-input staging (non-`Sum` aggregations only).
    weighted: Vec<f64>,
    /// Output values of the last activation.
    outputs: Vec<f64>,
}

impl Scratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Output slice of the most recent
    /// [`activate_into`](FeedForwardNetwork::activate_into) call.
    pub fn outputs(&self) -> &[f64] {
        &self.outputs
    }
}

thread_local! {
    /// Scratch backing the legacy convenience API, so `activate` /
    /// `act_argmax` stop allocating per step too (beyond `activate`'s
    /// returned `Vec`, which its signature requires).
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// A compiled feed-forward network.
///
/// ```
/// use clan_neat::{Genome, GenomeId, NeatConfig, FeedForwardNetwork};
/// use clan_neat::network::Scratch;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cfg = NeatConfig::builder(2, 1).build()?;
/// let genome = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(7));
/// let net = FeedForwardNetwork::compile(&genome, &cfg);
///
/// // Convenience tier: returns an owned Vec.
/// let out = net.activate(&[0.5, -0.5]);
/// assert_eq!(out.len(), 1);
///
/// // Zero-allocation tier: caller-owned buffers, reused across steps.
/// let mut scratch = Scratch::new();
/// let out2 = net.activate_into(&[0.5, -0.5], &mut scratch);
/// assert_eq!(out2, out.as_slice());
/// # Ok::<(), clan_neat::NeatError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedForwardNetwork {
    genome_id: GenomeId,
    num_inputs: usize,
    num_outputs: usize,
    /// Evaluation plan in topological order; slot `num_inputs + i` holds
    /// the value of `nodes[i]`.
    nodes: Vec<EvalNode>,
    /// Value slot of each network output.
    output_slots: Vec<usize>,
    /// Genes touched per activation (enabled connections + evaluated
    /// nodes) — the paper's inference cost unit.
    genes_per_activation: u64,
}

impl FeedForwardNetwork {
    /// Compiles `genome` into an evaluation plan.
    ///
    /// Nodes not on any path to an output are pruned; an output with no
    /// incoming connections still produces `activation(bias)`.
    ///
    /// The whole pass is index-based: node ids are resolved once into
    /// positions within the genome's sorted node list, and the
    /// reachability/topological/grouping passes run over flat `Vec`s.
    pub fn compile(genome: &Genome, cfg: &NeatConfig) -> FeedForwardNetwork {
        let num_inputs = cfg.num_inputs;
        let node_ids: Vec<NodeId> = genome.nodes().keys().copied().collect();
        let n_nodes = node_ids.len();
        // Sorted id list → binary search replaces BTreeMap lookups.
        let idx_of = |id: NodeId| -> Option<usize> { node_ids.binary_search(&id).ok() };

        // Single pass over the sorted connection genes: resolve endpoints
        // to indices. `src` is `usize::MAX - slot` for network inputs.
        // Dangling endpoints (possible only for genomes bypassing the
        // invariant checks) are skipped, as before.
        const INPUT_BASE: usize = usize::MAX;
        struct Edge {
            src: usize,
            dst: usize,
            weight: f64,
        }
        let mut edges: Vec<Edge> = Vec::with_capacity(genome.conns().len());
        for (key, gene) in genome.conns() {
            if !gene.enabled {
                continue;
            }
            let Some(dst) = idx_of(key.output) else {
                continue;
            };
            let src = if key.input.is_input() {
                INPUT_BASE - (-key.input.0 - 1) as usize
            } else {
                match idx_of(key.input) {
                    Some(i) => i,
                    None => continue,
                }
            };
            edges.push(Edge {
                src,
                dst,
                weight: gene.weight,
            });
        }
        let is_input_src = |src: usize| src > n_nodes;

        // Required nodes: reachable *backwards* from outputs over enabled
        // connections, plus the outputs themselves. Reverse adjacency in
        // CSR form (counts → offsets → fill), node-to-node edges only.
        let mut rev_deg = vec![0u32; n_nodes];
        for e in &edges {
            if !is_input_src(e.src) {
                rev_deg[e.dst] += 1;
            }
        }
        let mut rev_off = vec![0usize; n_nodes + 1];
        for i in 0..n_nodes {
            rev_off[i + 1] = rev_off[i] + rev_deg[i] as usize;
        }
        let mut rev_adj = vec![0u32; rev_off[n_nodes]];
        let mut rev_fill = rev_off.clone();
        for e in &edges {
            if !is_input_src(e.src) {
                rev_adj[rev_fill[e.dst]] = e.src as u32;
                rev_fill[e.dst] += 1;
            }
        }
        let mut required = vec![false; n_nodes];
        let mut queue: Vec<u32> = (0..cfg.num_outputs)
            .map(|o| {
                idx_of(NodeId::output(o)).expect("genome invariant: output node genes exist") as u32
            })
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head] as usize;
            head += 1;
            if required[n] {
                continue;
            }
            required[n] = true;
            queue.extend_from_slice(&rev_adj[rev_off[n]..rev_off[n + 1]]);
        }
        // (A required node may have been queued twice before its flag was
        // set; the `continue` above deduplicates, exactly like the old
        // BTreeSet insert.)

        // Topological order of the required subgraph (Kahn), forward
        // adjacency in CSR form over required-to-required edges.
        let mut indeg = vec![0u32; n_nodes];
        let mut fwd_deg = vec![0u32; n_nodes];
        let mut conn_count = 0u64;
        for e in &edges {
            if !required[e.dst] {
                continue;
            }
            if is_input_src(e.src) {
                conn_count += 1;
            } else if required[e.src] {
                conn_count += 1;
                indeg[e.dst] += 1;
                fwd_deg[e.src] += 1;
            }
        }
        let mut fwd_off = vec![0usize; n_nodes + 1];
        for i in 0..n_nodes {
            fwd_off[i + 1] = fwd_off[i] + fwd_deg[i] as usize;
        }
        let mut fwd_adj = vec![0u32; fwd_off[n_nodes]];
        let mut fwd_fill = fwd_off.clone();
        for e in &edges {
            if !is_input_src(e.src) && required[e.src] && required[e.dst] {
                fwd_adj[fwd_fill[e.src]] = e.dst as u32;
                fwd_fill[e.src] += 1;
            }
        }
        let n_required = required.iter().filter(|&&r| r).count();
        let mut order: Vec<u32> = Vec::with_capacity(n_required);
        // Seed with indegree-zero required nodes in sorted-id order, then
        // process FIFO — identical order to the previous map-based Kahn.
        let mut ready: Vec<u32> = (0..n_nodes as u32)
            .filter(|&i| required[i as usize] && indeg[i as usize] == 0)
            .collect();
        let mut ready_head = 0;
        while ready_head < ready.len() {
            let n = ready[ready_head];
            ready_head += 1;
            order.push(n);
            for &m in &fwd_adj[fwd_off[n as usize]..fwd_off[n as usize + 1]] {
                indeg[m as usize] -= 1;
                if indeg[m as usize] == 0 {
                    ready.push(m);
                }
            }
        }
        debug_assert_eq!(order.len(), n_required, "genome graph must be acyclic");

        // Slot assignment: inputs first, then nodes in topological order.
        let mut slot_of_node = vec![usize::MAX; n_nodes];
        for (i, &n) in order.iter().enumerate() {
            slot_of_node[n as usize] = num_inputs + i;
        }
        let slot_of_src = |src: usize| -> usize {
            if is_input_src(src) {
                INPUT_BASE - src // the input's observation index
            } else {
                slot_of_node[src]
            }
        };
        // Group enabled connections by destination in one pass; the edge
        // list preserves the sorted connection-gene order, so each node's
        // incoming list is ordered by source id exactly as before.
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_nodes];
        for e in &edges {
            if required[e.dst] && (is_input_src(e.src) || required[e.src]) {
                incoming[e.dst].push((slot_of_src(e.src), e.weight));
            }
        }
        let mut nodes = Vec::with_capacity(order.len());
        for &n in &order {
            let gene = genome.nodes()[&node_ids[n as usize]];
            nodes.push(EvalNode {
                bias: gene.bias,
                response: gene.response,
                activation: gene.activation,
                aggregation: gene.aggregation,
                incoming: std::mem::take(&mut incoming[n as usize]),
            });
        }
        let output_slots = (0..cfg.num_outputs)
            .map(|o| slot_of_node[idx_of(NodeId::output(o)).expect("output exists")])
            .collect();
        FeedForwardNetwork {
            genome_id: genome.id(),
            num_inputs,
            num_outputs: cfg.num_outputs,
            genes_per_activation: conn_count + order.len() as u64,
            nodes,
            output_slots,
        }
    }

    /// Id of the genome this network was compiled from.
    pub fn genome_id(&self) -> GenomeId {
        self.genome_id
    }

    /// Number of expected inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs produced by [`activate`](Self::activate).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Genes touched per activation — the paper's inference cost unit
    /// (enabled connections plus evaluated nodes).
    pub fn genes_per_activation(&self) -> u64 {
        self.genes_per_activation
    }

    /// Compiled evaluation plan, for the batched SoA tier ([`crate::batch`]).
    pub(crate) fn eval_nodes(&self) -> &[EvalNode] {
        &self.nodes
    }

    /// Value slots of the network outputs, for the batched SoA tier.
    pub(crate) fn output_slot_list(&self) -> &[usize] {
        &self.output_slots
    }

    /// Runs one forward pass into caller-owned buffers and returns the
    /// output slice (also available as [`Scratch::outputs`]).
    ///
    /// This is the zero-allocation hot path: once `scratch` has grown to
    /// this network's size, no heap allocation occurs. Results are
    /// bit-identical to [`activate`](Self::activate).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`num_inputs`](Self::num_inputs).
    pub fn activate_into<'s>(&self, inputs: &[f64], scratch: &'s mut Scratch) -> &'s [f64] {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            inputs.len()
        );
        let Scratch {
            values,
            weighted,
            outputs,
        } = scratch;
        values.clear();
        values.resize(self.num_inputs + self.nodes.len(), 0.0);
        values[..self.num_inputs].copy_from_slice(inputs);
        for (i, node) in self.nodes.iter().enumerate() {
            let agg = match node.aggregation {
                // Sum (the overwhelmingly common case) needs no staging
                // buffer; the fold matches `Aggregation::apply`'s
                // `iter().sum()` term order bit-for-bit.
                Aggregation::Sum => node
                    .incoming
                    .iter()
                    .map(|&(slot, w)| values[slot] * w)
                    // clan-lint: allow(D3, reason="THE canonical per-edge order: Aggregation::apply and the SoA batch kernel both match this exact fold")
                    .sum(),
                _ => {
                    weighted.clear();
                    weighted.extend(node.incoming.iter().map(|&(slot, w)| values[slot] * w));
                    node.aggregation.apply(weighted)
                }
            };
            values[self.num_inputs + i] = node.activation.apply(node.bias + node.response * agg);
        }
        outputs.clear();
        outputs.extend(self.output_slots.iter().map(|&s| values[s]));
        outputs
    }

    /// Runs one forward pass, returning a freshly allocated output vector.
    ///
    /// Compatibility wrapper over [`activate_into`](Self::activate_into)
    /// using a thread-local [`Scratch`]; per-step cost is one output-sized
    /// `Vec` allocation. Hot loops should hold their own `Scratch` and
    /// call `activate_into` directly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`num_inputs`](Self::num_inputs).
    pub fn activate(&self, inputs: &[f64]) -> Vec<f64> {
        LOCAL_SCRATCH.with(|s| self.activate_into(inputs, &mut s.borrow_mut()).to_vec())
    }

    /// Index of the maximum output — the usual discrete-action policy.
    ///
    /// Allocation-free: computes the argmax directly from the
    /// thread-local scratch's output slice.
    pub fn act_argmax(&self, inputs: &[f64]) -> usize {
        LOCAL_SCRATCH.with(|s| self.act_argmax_with(inputs, &mut s.borrow_mut()))
    }

    /// [`act_argmax`](Self::act_argmax) over caller-owned buffers — the
    /// zero-allocation policy step used by the evaluation engines.
    ///
    /// Tie-breaking matches the historical `max_by` semantics exactly:
    /// the *last* maximal output wins (exact ties are realistic — e.g.
    /// `Relu` outputs are exactly `0.0` for all negative
    /// pre-activations), so policies are bit-compatible with the
    /// allocating implementation this replaced.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`num_inputs`](Self::num_inputs),
    /// or if outputs are incomparable (NaN).
    pub fn act_argmax_with(&self, inputs: &[f64], scratch: &mut Scratch) -> usize {
        let out = self.activate_into(inputs, scratch);
        let mut best = 0;
        for (i, &v) in out.iter().enumerate().skip(1) {
            if v.partial_cmp(&out[best]).expect("finite outputs").is_ge() {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(i: usize, o: usize) -> NeatConfig {
        NeatConfig::builder(i, o).build().unwrap()
    }

    fn genome(cfg: &NeatConfig, seed: u64) -> Genome {
        Genome::new_initial(cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn outputs_have_expected_arity() {
        let cfg = cfg(3, 2);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 1), &cfg);
        let out = net.activate(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "expected 3 inputs")]
    fn wrong_input_arity_panics() {
        let cfg = cfg(3, 1);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 1), &cfg);
        net.activate(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "expected 2 inputs")]
    fn wrong_input_arity_panics_in_scratch_path() {
        let cfg = cfg(2, 1);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 1), &cfg);
        let mut scratch = Scratch::new();
        net.activate_into(&[0.0], &mut scratch);
    }

    #[test]
    fn unconnected_output_is_activation_of_bias() {
        let cfg = crate::NeatConfig::builder(1, 1)
            .initial_connection(crate::config::InitialConnection::Unconnected)
            .build()
            .unwrap();
        let g = genome(&cfg, 2);
        let bias = g.nodes()[&NodeId::output(0)].bias;
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let out = net.activate(&[123.0]);
        let expected = Activation::Sigmoid.apply(bias);
        assert!((out[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn disabled_connections_ignored() {
        // An add-node split disables the original connection; the compiled
        // network must route through the new hidden node only.
        let cfg = cfg(1, 1);
        let mut g = genome(&cfg, 3);
        g.mutate_add_node(&cfg, &mut StdRng::seed_from_u64(4));
        let net = FeedForwardNetwork::compile(&g, &cfg);
        // Path is input -> hidden -> output: 2 enabled conns + 2 nodes.
        assert_eq!(net.genes_per_activation(), 4);
        assert!(net.activate(&[1.0])[0].is_finite());
    }

    #[test]
    fn genes_per_activation_counts_enabled_required_only() {
        let cfg = cfg(2, 1);
        let g = genome(&cfg, 5);
        let net = FeedForwardNetwork::compile(&g, &cfg);
        // 2 enabled connections + 1 output node.
        assert_eq!(net.genes_per_activation(), 3);
    }

    #[test]
    fn argmax_policy_in_range() {
        let cfg = cfg(4, 3);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 6), &cfg);
        for i in 0..20 {
            let x = i as f64 / 10.0;
            let a = net.act_argmax(&[x, -x, x * 0.5, 1.0]);
            assert!(a < 3);
        }
    }

    #[test]
    fn deeper_topologies_stay_finite() {
        let cfg = cfg(4, 2);
        let mut g = genome(&cfg, 7);
        let mut r = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            g.mutate(&cfg, &mut r);
        }
        g.check_invariants(&cfg).unwrap();
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let out = net.activate(&[0.9, -0.9, 0.1, 0.0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn genome_with_all_connections_deleted_still_works() {
        // Heavy deletion can strand outputs entirely; the network must
        // degrade to activation(bias), never panic.
        let cfg = cfg(3, 2);
        let mut g = genome(&cfg, 11);
        let mut r = StdRng::seed_from_u64(12);
        for _ in 0..200 {
            g.mutate_delete_connection(&mut r);
        }
        assert_eq!(g.conns().len(), 0);
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let out = net.activate(&[1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
        // Only the two output nodes are touched.
        assert_eq!(net.genes_per_activation(), 2);
    }

    #[test]
    fn compile_is_deterministic() {
        let cfg = cfg(3, 2);
        let g = genome(&cfg, 9);
        let a = FeedForwardNetwork::compile(&g, &cfg);
        let b = FeedForwardNetwork::compile(&g, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.activate(&[0.1, 0.2, 0.3]), b.activate(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn activate_into_matches_activate_bit_for_bit() {
        // Across shallow and heavily mutated topologies (which exercise
        // non-Sum aggregations once mutation enables them), the scratch
        // path must agree exactly with the legacy path.
        let cfg = crate::NeatConfig::builder(5, 3)
            .activation_mutate_rate(0.3)
            .aggregation_mutate_rate(0.3)
            .build()
            .unwrap();
        let mut scratch = Scratch::new();
        for seed in 0..10 {
            let mut g = genome(&cfg, 100 + seed);
            let mut r = StdRng::seed_from_u64(200 + seed);
            for _ in 0..60 {
                g.mutate(&cfg, &mut r);
            }
            let net = FeedForwardNetwork::compile(&g, &cfg);
            for step in 0..20 {
                let x = step as f64 / 7.0;
                let inputs = [x, -x, 0.5 * x, 1.0 - x, x * x];
                let legacy = net.activate(&inputs);
                let fast = net.activate_into(&inputs, &mut scratch);
                assert_eq!(legacy.as_slice(), fast, "seed {seed} step {step}");
                assert_eq!(
                    net.act_argmax(&inputs),
                    net.act_argmax_with(&inputs, &mut scratch),
                    "argmax mismatch at seed {seed} step {step}"
                );
            }
        }
    }

    #[test]
    fn argmax_ties_keep_last_max() {
        // Two unconnected outputs with identical biases produce exactly
        // tied outputs; the historical `max_by` semantics (last maximal
        // index wins) must be preserved so trajectories stay
        // bit-compatible with the allocating implementation.
        let json = r#"{
            "version": 1,
            "genome": {
                "id": 0,
                "nodes": [
                    [0, {"bias": 0.25, "response": 1.0,
                         "activation": "Sigmoid", "aggregation": "Sum"}],
                    [1, {"bias": 0.25, "response": 1.0,
                         "activation": "Sigmoid", "aggregation": "Sum"}],
                    [2, {"bias": 0.75, "response": 1.0,
                         "activation": "Sigmoid", "aggregation": "Sum"}]
                ],
                "conns": [],
                "fitness": null
            }
        }"#;
        let g = crate::checkpoint::genome_from_json(json).unwrap();
        let three_out = cfg(1, 3);
        let net = FeedForwardNetwork::compile(&g, &three_out);
        let out = net.activate(&[0.0]);
        assert_eq!(out[0], out[1], "outputs 0 and 1 must tie exactly");
        assert!(out[2] > out[0]);
        // Unique max still wins...
        assert_eq!(net.act_argmax(&[0.0]), 2);
        // ...and among exact ties the last index wins, as max_by did.
        let tied = r#"{
            "version": 1,
            "genome": {
                "id": 0,
                "nodes": [
                    [0, {"bias": 0.5, "response": 1.0,
                         "activation": "Sigmoid", "aggregation": "Sum"}],
                    [1, {"bias": 0.5, "response": 1.0,
                         "activation": "Sigmoid", "aggregation": "Sum"}]
                ],
                "conns": [],
                "fitness": null
            }
        }"#;
        let g = crate::checkpoint::genome_from_json(tied).unwrap();
        let two_out = cfg(1, 2);
        let net = FeedForwardNetwork::compile(&g, &two_out);
        assert_eq!(net.act_argmax(&[0.0]), 1);
    }

    #[test]
    fn scratch_is_reusable_across_networks_of_different_sizes() {
        let mut scratch = Scratch::new();
        let big_cfg = cfg(64, 8);
        let small_cfg = cfg(2, 1);
        let big = FeedForwardNetwork::compile(&genome(&big_cfg, 1), &big_cfg);
        let small = FeedForwardNetwork::compile(&genome(&small_cfg, 2), &small_cfg);
        let big_in = vec![0.25; 64];
        let a = big.activate_into(&big_in, &mut scratch).to_vec();
        let b = small.activate_into(&[0.1, 0.9], &mut scratch).to_vec();
        // Shrinking back to the big network must reproduce its output.
        let a2 = big.activate_into(&big_in, &mut scratch).to_vec();
        assert_eq!(a, a2);
        assert_eq!(b.len(), 1);
        assert_eq!(scratch.outputs().len(), 8);
    }

    #[test]
    fn scratch_buffers_do_not_grow_after_first_use() {
        let cfg = cfg(8, 4);
        let mut g = genome(&cfg, 3);
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            g.mutate(&cfg, &mut r);
        }
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let mut scratch = Scratch::new();
        let inputs = [0.5; 8];
        net.activate_into(&inputs, &mut scratch);
        let caps = (
            scratch.values.capacity(),
            scratch.weighted.capacity(),
            scratch.outputs.capacity(),
        );
        for _ in 0..100 {
            net.activate_into(&inputs, &mut scratch);
        }
        assert_eq!(
            caps,
            (
                scratch.values.capacity(),
                scratch.weighted.capacity(),
                scratch.outputs.capacity(),
            ),
            "steady-state activation must not reallocate"
        );
    }
}
