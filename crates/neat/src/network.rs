//! Phenotype: a feed-forward network compiled from a [`Genome`].
//!
//! Compilation resolves the genome's gene graph into an indexed,
//! topologically ordered evaluation plan once, so that the (many) per-step
//! activations during an episode are cheap. Only nodes *required* for the
//! outputs are evaluated, mirroring `neat-python`.

use crate::activation::{Activation, Aggregation};
use crate::config::NeatConfig;
use crate::gene::{GenomeId, NodeId};
use crate::genome::Genome;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One node's compiled evaluation plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EvalNode {
    bias: f64,
    response: f64,
    activation: Activation,
    aggregation: Aggregation,
    /// `(value_slot, weight)` pairs for incoming enabled connections.
    incoming: Vec<(usize, f64)>,
}

/// A compiled feed-forward network.
///
/// ```
/// use clan_neat::{Genome, GenomeId, NeatConfig, FeedForwardNetwork};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cfg = NeatConfig::builder(2, 1).build()?;
/// let genome = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(7));
/// let net = FeedForwardNetwork::compile(&genome, &cfg);
/// let out = net.activate(&[0.5, -0.5]);
/// assert_eq!(out.len(), 1);
/// # Ok::<(), clan_neat::NeatError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedForwardNetwork {
    genome_id: GenomeId,
    num_inputs: usize,
    num_outputs: usize,
    /// Evaluation plan in topological order; slot `num_inputs + i` holds
    /// the value of `nodes[i]`.
    nodes: Vec<EvalNode>,
    /// Value slot of each network output.
    output_slots: Vec<usize>,
    /// Genes touched per activation (enabled connections + evaluated
    /// nodes) — the paper's inference cost unit.
    genes_per_activation: u64,
}

impl FeedForwardNetwork {
    /// Compiles `genome` into an evaluation plan.
    ///
    /// Nodes not on any path to an output are pruned; an output with no
    /// incoming connections still produces `activation(bias)`.
    pub fn compile(genome: &Genome, cfg: &NeatConfig) -> FeedForwardNetwork {
        let outputs: BTreeSet<NodeId> = (0..cfg.num_outputs).map(NodeId::output).collect();

        // Required nodes: reachable *backwards* from outputs over enabled
        // connections, plus the outputs themselves.
        let mut rev: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (key, gene) in genome.conns() {
            if gene.enabled {
                rev.entry(key.output).or_default().push(key.input);
            }
        }
        let mut required: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = outputs.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            if n.is_input() || !required.insert(n) {
                continue;
            }
            if let Some(srcs) = rev.get(&n) {
                queue.extend(srcs.iter().copied());
            }
        }

        // Topological order of the required subgraph (Kahn).
        let mut indeg: BTreeMap<NodeId, usize> = required.iter().map(|&n| (n, 0)).collect();
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut conn_count = 0u64;
        for (key, gene) in genome.conns() {
            if !gene.enabled || !required.contains(&key.output) {
                continue;
            }
            if !key.input.is_input() && !required.contains(&key.input) {
                continue;
            }
            conn_count += 1;
            if !key.input.is_input() {
                *indeg.get_mut(&key.output).expect("required node") += 1;
                adj.entry(key.input).or_default().push(key.output);
            }
        }
        let mut order: Vec<NodeId> = Vec::with_capacity(required.len());
        let mut ready: VecDeque<NodeId> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        while let Some(n) = ready.pop_front() {
            order.push(n);
            if let Some(nexts) = adj.get(&n) {
                for &m in nexts {
                    let d = indeg.get_mut(&m).expect("required node");
                    *d -= 1;
                    if *d == 0 {
                        ready.push_back(m);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), required.len(), "genome graph must be acyclic");

        // Slot assignment: inputs first, then nodes in topological order.
        let slot_of = |n: NodeId, node_slots: &BTreeMap<NodeId, usize>| -> usize {
            if n.is_input() {
                (-n.0 - 1) as usize
            } else {
                node_slots[&n]
            }
        };
        let mut node_slots: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (i, &n) in order.iter().enumerate() {
            node_slots.insert(n, cfg.num_inputs + i);
        }
        // Group enabled connections by destination once (compile is on the
        // inference hot path: every genome recompiles every generation).
        let mut incoming_of: BTreeMap<NodeId, Vec<(usize, f64)>> = BTreeMap::new();
        for (key, cg) in genome.conns() {
            if cg.enabled
                && required.contains(&key.output)
                && (key.input.is_input() || required.contains(&key.input))
            {
                incoming_of
                    .entry(key.output)
                    .or_default()
                    .push((slot_of(key.input, &node_slots), cg.weight));
            }
        }
        let mut nodes = Vec::with_capacity(order.len());
        for &n in &order {
            let gene = genome.nodes()[&n];
            nodes.push(EvalNode {
                bias: gene.bias,
                response: gene.response,
                activation: gene.activation,
                aggregation: gene.aggregation,
                incoming: incoming_of.remove(&n).unwrap_or_default(),
            });
        }
        let output_slots = (0..cfg.num_outputs)
            .map(|o| node_slots[&NodeId::output(o)])
            .collect();
        FeedForwardNetwork {
            genome_id: genome.id(),
            num_inputs: cfg.num_inputs,
            num_outputs: cfg.num_outputs,
            genes_per_activation: conn_count + order.len() as u64,
            nodes,
            output_slots,
        }
    }

    /// Id of the genome this network was compiled from.
    pub fn genome_id(&self) -> GenomeId {
        self.genome_id
    }

    /// Number of expected inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs produced by [`activate`](Self::activate).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Genes touched per activation — the paper's inference cost unit
    /// (enabled connections plus evaluated nodes).
    pub fn genes_per_activation(&self) -> u64 {
        self.genes_per_activation
    }

    /// Runs one forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`num_inputs`](Self::num_inputs).
    pub fn activate(&self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            inputs.len()
        );
        let mut values = vec![0.0f64; self.num_inputs + self.nodes.len()];
        values[..self.num_inputs].copy_from_slice(inputs);
        let mut weighted = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            weighted.clear();
            weighted.extend(node.incoming.iter().map(|&(slot, w)| values[slot] * w));
            let agg = node.aggregation.apply(&weighted);
            values[self.num_inputs + i] = node
                .activation
                .apply(node.bias + node.response * agg);
        }
        self.output_slots.iter().map(|&s| values[s]).collect()
    }

    /// Index of the maximum output — the usual discrete-action policy.
    pub fn act_argmax(&self, inputs: &[f64]) -> usize {
        let out = self.activate(inputs);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite outputs"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(i: usize, o: usize) -> NeatConfig {
        NeatConfig::builder(i, o).build().unwrap()
    }

    fn genome(cfg: &NeatConfig, seed: u64) -> Genome {
        Genome::new_initial(cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn outputs_have_expected_arity() {
        let cfg = cfg(3, 2);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 1), &cfg);
        let out = net.activate(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "expected 3 inputs")]
    fn wrong_input_arity_panics() {
        let cfg = cfg(3, 1);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 1), &cfg);
        net.activate(&[0.0]);
    }

    #[test]
    fn unconnected_output_is_activation_of_bias() {
        let cfg = crate::NeatConfig::builder(1, 1)
            .initial_connection(crate::config::InitialConnection::Unconnected)
            .build()
            .unwrap();
        let g = genome(&cfg, 2);
        let bias = g.nodes()[&NodeId::output(0)].bias;
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let out = net.activate(&[123.0]);
        let expected = Activation::Sigmoid.apply(bias);
        assert!((out[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn disabled_connections_ignored() {
        // An add-node split disables the original connection; the compiled
        // network must route through the new hidden node only.
        let cfg = cfg(1, 1);
        let mut g = genome(&cfg, 3);
        g.mutate_add_node(&cfg, &mut StdRng::seed_from_u64(4));
        let net = FeedForwardNetwork::compile(&g, &cfg);
        // Path is input -> hidden -> output: 2 enabled conns + 2 nodes.
        assert_eq!(net.genes_per_activation(), 4);
        assert!(net.activate(&[1.0])[0].is_finite());
    }

    #[test]
    fn genes_per_activation_counts_enabled_required_only() {
        let cfg = cfg(2, 1);
        let g = genome(&cfg, 5);
        let net = FeedForwardNetwork::compile(&g, &cfg);
        // 2 enabled connections + 1 output node.
        assert_eq!(net.genes_per_activation(), 3);
    }

    #[test]
    fn argmax_policy_in_range() {
        let cfg = cfg(4, 3);
        let net = FeedForwardNetwork::compile(&genome(&cfg, 6), &cfg);
        for i in 0..20 {
            let x = i as f64 / 10.0;
            let a = net.act_argmax(&[x, -x, x * 0.5, 1.0]);
            assert!(a < 3);
        }
    }

    #[test]
    fn deeper_topologies_stay_finite() {
        let cfg = cfg(4, 2);
        let mut g = genome(&cfg, 7);
        let mut r = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            g.mutate(&cfg, &mut r);
        }
        g.check_invariants(&cfg).unwrap();
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let out = net.activate(&[0.9, -0.9, 0.1, 0.0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn genome_with_all_connections_deleted_still_works() {
        // Heavy deletion can strand outputs entirely; the network must
        // degrade to activation(bias), never panic.
        let cfg = cfg(3, 2);
        let mut g = genome(&cfg, 11);
        let mut r = StdRng::seed_from_u64(12);
        for _ in 0..200 {
            g.mutate_delete_connection(&mut r);
        }
        assert_eq!(g.conns().len(), 0);
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let out = net.activate(&[1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
        // Only the two output nodes are touched.
        assert_eq!(net.genes_per_activation(), 2);
    }

    #[test]
    fn compile_is_deterministic() {
        let cfg = cfg(3, 2);
        let g = genome(&cfg, 9);
        let a = FeedForwardNetwork::compile(&g, &cfg);
        let b = FeedForwardNetwork::compile(&g, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.activate(&[0.1, 0.2, 0.3]), b.activate(&[0.1, 0.2, 0.3]));
    }
}
