//! Speciation: partitioning a population into species by compatibility
//! distance (the paper's `S` compute block).
//!
//! NEAT speciates to protect structural innovation: a genome that just
//! grew a new node competes only within its species until the structure
//! has had time to optimize. The CLAN paper's key observation is that this
//! step is *synchronous* — it needs every genome's structure — which is
//! exactly what CLAN_DDA relaxes by speciating small "clans" independently.

use crate::config::NeatConfig;
use crate::counters::CostCounters;
use crate::gene::{GenomeId, SpeciesId};
use crate::genome::Genome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One species: a set of structurally similar genomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Species {
    id: SpeciesId,
    created_generation: u64,
    last_improved_generation: u64,
    representative: Genome,
    members: Vec<GenomeId>,
    /// Mean member fitness for the current generation, set during planning.
    fitness: Option<f64>,
    /// Adjusted (shared) fitness, set during planning.
    adjusted_fitness: Option<f64>,
    /// Best species fitness seen so far (for stagnation tracking).
    best_fitness: Option<f64>,
}

impl Species {
    pub(crate) fn new(id: SpeciesId, representative: Genome, generation: u64) -> Species {
        Species {
            id,
            created_generation: generation,
            last_improved_generation: generation,
            representative,
            members: Vec::new(),
            fitness: None,
            adjusted_fitness: None,
            best_fitness: None,
        }
    }

    /// Species identifier.
    pub fn id(&self) -> SpeciesId {
        self.id
    }

    /// Generation in which the species was created.
    pub fn created_generation(&self) -> u64 {
        self.created_generation
    }

    /// Last generation in which the species' fitness improved.
    pub fn last_improved_generation(&self) -> u64 {
        self.last_improved_generation
    }

    /// The genome representing this species for distance comparisons.
    pub fn representative(&self) -> &Genome {
        &self.representative
    }

    /// Member genome ids for the current generation.
    pub fn members(&self) -> &[GenomeId] {
        &self.members
    }

    /// Mean member fitness (set during generation planning).
    pub fn fitness(&self) -> Option<f64> {
        self.fitness
    }

    /// Adjusted (fitness-shared) fitness (set during generation planning).
    pub fn adjusted_fitness(&self) -> Option<f64> {
        self.adjusted_fitness
    }

    pub(crate) fn set_representative(&mut self, rep: Genome) {
        self.representative = rep;
    }

    pub(crate) fn clear_members(&mut self) {
        self.members.clear();
    }

    pub(crate) fn push_member(&mut self, id: GenomeId) {
        self.members.push(id);
    }

    pub(crate) fn record_fitness(&mut self, mean: f64, max: f64, generation: u64) {
        self.fitness = Some(mean);
        if self.best_fitness.is_none_or(|b| max > b) {
            self.best_fitness = Some(max);
            self.last_improved_generation = generation;
        }
    }

    pub(crate) fn set_adjusted_fitness(&mut self, af: f64) {
        self.adjusted_fitness = Some(af);
    }

    /// Generations since the species last improved.
    pub fn stagnation(&self, generation: u64) -> u64 {
        generation.saturating_sub(self.last_improved_generation)
    }
}

/// The set of all living species plus the speciation procedure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpeciesSet {
    #[serde(
        serialize_with = "crate::serde_util::map_as_pairs",
        deserialize_with = "crate::serde_util::pairs_as_map"
    )]
    species: BTreeMap<SpeciesId, Species>,
    next_id: u32,
    /// Live compatibility threshold (dynamic thresholding state);
    /// initialized from the config on first use.
    threshold: Option<f64>,
    /// Consecutive generations with fewer species than the target band
    /// (hysteresis state for the dynamic threshold controller).
    below_band_streak: u32,
    /// Generation the distance memo below belongs to; the memo is wiped
    /// whenever speciation runs for a different generation.
    ///
    /// Transient cache state: never serialized (checkpoints stay
    /// cache-free and loadable across builds with or without the memo).
    #[serde(skip)]
    memo_generation: Option<u64>,
    /// Per-generation compatibility-distance memo keyed
    /// `(genome_id, representative_id)`. Distances are pure functions of
    /// the two genomes, and genome ids are never reused with different
    /// contents within a run, so repeated speciation passes over the
    /// same generation reuse cached distances instead of recomputing
    /// them.
    ///
    /// Trade-off, measured honestly by `distance_memo_hits`: **no
    /// current orchestrator flow re-speciates within a generation**
    /// (each calls `speciate` once and DDA resync advances the
    /// generation first, wiping the memo), so in shipped runs every
    /// distance evaluation pays one map insert with zero hits in return
    /// — a few percent of the speciation phase, which is itself a small
    /// fraction of a generation. The memo pays off only in multi-pass
    /// same-generation flows (analysis tooling re-running the phase,
    /// future mid-generation global speciation). Gene-cost accounting
    /// (the paper's metric) is unaffected either way; if the hit
    /// counter stays at zero once such flows exist, delete this.
    ///
    /// Transient cache state: never serialized.
    #[serde(skip)]
    distance_memo: BTreeMap<(u64, u64), f64>,
}

/// Result summary of one speciation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeciationOutcome {
    /// Number of species after the pass.
    pub species_count: usize,
    /// Number of genome-pair distance evaluations performed (memo
    /// *misses* — only these are charged as speciation cost).
    pub distance_evals: u64,
    /// Genes processed by those evaluations (the paper's cost unit).
    pub genes_processed: u64,
    /// Distance requests served from the per-generation memo instead of
    /// being recomputed (memo *hits*; zero cost).
    pub distance_memo_hits: u64,
}

impl SpeciesSet {
    /// Creates an empty species set.
    pub fn new() -> SpeciesSet {
        SpeciesSet::default()
    }

    /// Living species, keyed by id.
    pub fn species(&self) -> &BTreeMap<SpeciesId, Species> {
        &self.species
    }

    /// Mutable access for planning (crate-internal).
    pub(crate) fn species_mut(&mut self) -> &mut BTreeMap<SpeciesId, Species> {
        &mut self.species
    }

    /// Number of living species.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True if no species exist (fresh or post-extinction state).
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Removes a species (stagnation culling).
    pub(crate) fn remove(&mut self, id: SpeciesId) -> Option<Species> {
        self.species.remove(&id)
    }

    /// The compatibility threshold currently in force.
    pub fn current_threshold(&self, cfg: &NeatConfig) -> f64 {
        self.threshold.unwrap_or(cfg.compatibility_threshold)
    }

    /// Assigns every genome to a species, following `neat-python`:
    ///
    /// 1. Each existing species adopts as its new representative the
    ///    unassigned genome closest to its previous representative.
    /// 2. Every remaining genome joins the species with the nearest
    ///    representative if that distance is below the live
    ///    compatibility threshold, otherwise it founds a new species.
    ///
    /// When `cfg.dynamic_compatibility` is set, the live threshold is
    /// then nudged ±10% to steer the species count into the target band
    /// (scaled down for small populations/clans), taking effect next
    /// generation.
    ///
    /// Every distance evaluation is charged to `counters` (genes of both
    /// genomes), which is how the paper's Figure 3 speciation cost series
    /// is produced.
    pub fn speciate(
        &mut self,
        genomes: &BTreeMap<GenomeId, Genome>,
        cfg: &NeatConfig,
        generation: u64,
        counters: &mut CostCounters,
    ) -> SpeciationOutcome {
        // Per-generation distance memo: distances are pure in the two
        // genomes and ids are never rebound within a run, so any repeated
        // (genome, representative) comparison this generation is served
        // from cache, free of gene cost.
        if self.memo_generation != Some(generation) {
            self.distance_memo.clear();
            self.memo_generation = Some(generation);
        }
        let memo = &mut self.distance_memo;
        let mut distance_evals = 0u64;
        let mut genes_processed = 0u64;
        let mut memo_hits = 0u64;
        let mut dist = |rep: &Genome, genome: &Genome, counters: &mut CostCounters| -> f64 {
            let key = (genome.id().0, rep.id().0);
            if let Some(&cached) = memo.get(&key) {
                memo_hits += 1;
                return cached;
            }
            let d = rep.distance(genome, cfg);
            let genes = rep.num_genes() + genome.num_genes();
            counters.record_distance(genes);
            distance_evals += 1;
            genes_processed += genes;
            memo.insert(key, d);
            d
        };

        let mut unassigned: BTreeMap<GenomeId, &Genome> =
            genomes.iter().map(|(&id, g)| (id, g)).collect();

        // Phase 1: re-anchor each surviving species on the closest genome.
        let sids: Vec<SpeciesId> = self.species.keys().copied().collect();
        let mut adopted: Vec<(SpeciesId, GenomeId)> = Vec::new();
        for sid in sids {
            let rep = self.species[&sid].representative().clone();
            let mut best: Option<(f64, GenomeId)> = None;
            for (&gid, g) in &unassigned {
                let d = dist(&rep, g, counters);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, gid));
                }
            }
            match best {
                Some((_, gid)) => {
                    unassigned.remove(&gid);
                    adopted.push((sid, gid));
                }
                None => {
                    // More species than genomes: species keeps its old
                    // representative and simply gets no members this round.
                    adopted.push((sid, GenomeId(u64::MAX)));
                }
            }
        }
        for s in self.species.values_mut() {
            s.clear_members();
        }
        for (sid, gid) in adopted {
            if gid == GenomeId(u64::MAX) {
                continue;
            }
            let genome = genomes[&gid].clone();
            let s = self.species.get_mut(&sid).expect("species exists");
            s.set_representative(genome);
            s.push_member(gid);
        }

        // Phase 2: assign the rest to the nearest compatible species.
        let threshold = *self.threshold.get_or_insert(cfg.compatibility_threshold);
        let remaining: Vec<GenomeId> = unassigned.keys().copied().collect();
        for gid in remaining {
            let genome = &genomes[&gid];
            let mut best: Option<(f64, SpeciesId)> = None;
            for (sid, s) in &self.species {
                let d = dist(s.representative(), genome, counters);
                if d < threshold && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, *sid));
                }
            }
            match best {
                Some((_, sid)) => {
                    self.species
                        .get_mut(&sid)
                        .expect("species exists")
                        .push_member(gid);
                }
                None => {
                    let sid = SpeciesId(self.next_id);
                    self.next_id += 1;
                    let mut sp = Species::new(sid, genome.clone(), generation);
                    sp.push_member(gid);
                    self.species.insert(sid, sp);
                }
            }
        }

        // Drop species that ended up with no members (they would otherwise
        // linger forever with a stale representative).
        self.species.retain(|_, s| !s.members().is_empty());

        // Dynamic threshold control: steer the species count toward the
        // target band, scaled for small populations (a 9-genome clan
        // cannot sustain 6 species). Over-fragmentation is corrected
        // immediately (it destroys selection pressure at once), but the
        // threshold only shrinks after a sustained streak below the band
        // — young populations are legitimately homogeneous, and reacting
        // to them over-fragments small-genome tasks (see the `ablation`
        // bench).
        if cfg.dynamic_compatibility {
            let pop = genomes.len();
            let lo = cfg.target_species_min.min((pop / 10).max(1));
            let hi = cfg.target_species_max.min((pop / 4).max(2)).max(lo);
            let count = self.species.len();
            if count < lo {
                self.below_band_streak += 1;
            } else {
                self.below_band_streak = 0;
            }
            let t = self.threshold.as_mut().expect("initialized above");
            if count > hi {
                *t = (*t * 1.05).min(8.0);
            } else if self.below_band_streak >= 4 {
                *t = (*t * 0.95).max(0.4);
            }
        }

        SpeciationOutcome {
            species_count: self.species.len(),
            distance_evals,
            genes_processed,
            distance_memo_hits: memo_hits,
        }
    }

    /// Test support: drops all memoized distances so a pass can be
    /// exercised cold regardless of generation bookkeeping.
    #[cfg(test)]
    fn wipe_distance_memo(&mut self) {
        self.distance_memo.clear();
        self.memo_generation = None;
    }

    /// Species id containing `genome`, if any.
    pub fn species_of(&self, genome: GenomeId) -> Option<SpeciesId> {
        self.species
            .iter()
            .find(|(_, s)| s.members().contains(&genome))
            .map(|(&sid, _)| sid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(3, 1).build().unwrap()
    }

    fn make_genomes(cfg: &NeatConfig, n: usize, seed: u64) -> BTreeMap<GenomeId, Genome> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let id = GenomeId(i as u64);
                (id, Genome::new_initial(cfg, id, &mut rng))
            })
            .collect()
    }

    #[test]
    fn all_genomes_assigned_exactly_once() {
        let cfg = cfg();
        let genomes = make_genomes(&cfg, 20, 1);
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        set.speciate(&genomes, &cfg, 0, &mut counters);
        let mut seen = std::collections::BTreeSet::new();
        for s in set.species().values() {
            for &m in s.members() {
                assert!(seen.insert(m), "genome {m} assigned twice");
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn similar_genomes_share_one_species() {
        let cfg = cfg();
        // Identical initial genomes (same seed per genome) are distance 0.
        let mut genomes = BTreeMap::new();
        let proto = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(2));
        for i in 0..10 {
            let mut g = proto.clone();
            g.set_id(GenomeId(i));
            genomes.insert(GenomeId(i), g);
        }
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        let out = set.speciate(&genomes, &cfg, 0, &mut counters);
        assert_eq!(out.species_count, 1);
    }

    #[test]
    fn divergent_genomes_split_species() {
        let cfg = NeatConfig::builder(3, 1)
            .compatibility_threshold(0.5)
            .build()
            .unwrap();
        let mut genomes = make_genomes(&cfg, 8, 3);
        // Heavily mutate half the population to force divergence.
        let ids: Vec<GenomeId> = genomes.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                let g = genomes.get_mut(id).unwrap();
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                for _ in 0..30 {
                    g.mutate(&cfg, &mut rng);
                }
            }
        }
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        let out = set.speciate(&genomes, &cfg, 0, &mut counters);
        assert!(out.species_count >= 2, "expected divergence to split");
    }

    #[test]
    fn representatives_persist_across_rounds() {
        let cfg = cfg();
        let genomes = make_genomes(&cfg, 12, 4);
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        set.speciate(&genomes, &cfg, 0, &mut counters);
        let count1 = set.len();
        // Same genomes again: structure identical, species must not churn.
        set.speciate(&genomes, &cfg, 1, &mut counters);
        assert_eq!(set.len(), count1);
    }

    #[test]
    fn cost_accounting_nonzero() {
        let cfg = cfg();
        let genomes = make_genomes(&cfg, 10, 5);
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        let out = set.speciate(&genomes, &cfg, 0, &mut counters);
        assert!(out.distance_evals > 0);
        assert!(out.genes_processed >= out.distance_evals * 8);
        assert_eq!(counters.current().speciation_genes, out.genes_processed);
    }

    #[test]
    fn species_of_finds_member() {
        let cfg = cfg();
        let genomes = make_genomes(&cfg, 6, 6);
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        set.speciate(&genomes, &cfg, 0, &mut counters);
        for &gid in genomes.keys() {
            assert!(set.species_of(gid).is_some());
        }
        assert!(set.species_of(GenomeId(999)).is_none());
    }

    #[test]
    fn distance_memo_serves_repeat_comparisons() {
        let cfg = cfg();
        let genomes = make_genomes(&cfg, 15, 8);
        let mut counters = CostCounters::new();

        let mut memoized = SpeciesSet::new();
        let first = memoized.speciate(&genomes, &cfg, 0, &mut counters);
        assert_eq!(
            first.distance_memo_hits, 0,
            "a fresh set's first pass repeats nothing"
        );

        // Re-speciating the same generation (the DDA resync pattern)
        // repeats (genome, representative) comparisons both across passes
        // and within a pass (phase 1 re-anchoring recomputes pairs that
        // phase 2 then needs again); the memo must serve all of them
        // without recomputation.
        let evals_before = counters.current().distance_evals;
        let second = memoized.speciate(&genomes, &cfg, 0, &mut counters);
        assert!(second.distance_memo_hits > 0, "warm memo must hit");
        assert!(
            second.distance_evals < first.distance_evals,
            "hits replace recomputation: {} vs {}",
            second.distance_evals,
            first.distance_evals
        );
        assert_eq!(
            counters.current().distance_evals - evals_before,
            second.distance_evals,
            "only misses are charged to the cost counters"
        );
        assert_eq!(first.species_count, second.species_count);

        // A new generation index wipes the memo: cross-pass pairs must be
        // recomputed (intra-pass repeats may still hit).
        let third = memoized.speciate(&genomes, &cfg, 1, &mut counters);
        assert!(
            third.distance_evals > second.distance_evals,
            "wiped memo must recompute cross-pass distances: {} vs {}",
            third.distance_evals,
            second.distance_evals
        );
    }

    #[test]
    fn distance_memo_does_not_change_assignments() {
        let cfg = NeatConfig::builder(3, 1)
            .compatibility_threshold(0.6)
            .build()
            .unwrap();
        let mut genomes = make_genomes(&cfg, 12, 9);
        let ids: Vec<GenomeId> = genomes.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                let g = genomes.get_mut(id).unwrap();
                let mut rng = StdRng::seed_from_u64(500 + i as u64);
                for _ in 0..25 {
                    g.mutate(&cfg, &mut rng);
                }
            }
        }
        // Two identical sets run two passes over the same generation; one
        // has its memo wiped before the second pass. The resulting
        // partitions must be identical — cached distances change cost,
        // never outcomes.
        let mut counters = CostCounters::new();
        let mut warm = SpeciesSet::new();
        warm.speciate(&genomes, &cfg, 0, &mut counters);
        let mut cold = warm.clone();
        cold.wipe_distance_memo();
        let warm_out = warm.speciate(&genomes, &cfg, 0, &mut counters);
        let cold_out = cold.speciate(&genomes, &cfg, 0, &mut counters);
        assert!(warm_out.distance_memo_hits > cold_out.distance_memo_hits);
        let members = |set: &SpeciesSet| -> Vec<(SpeciesId, Vec<GenomeId>)> {
            set.species()
                .iter()
                .map(|(&sid, s)| (sid, s.members().to_vec()))
                .collect()
        };
        assert_eq!(members(&warm), members(&cold));
        assert_eq!(warm_out.species_count, cold_out.species_count);
    }

    #[test]
    fn stagnation_counter_tracks_improvement() {
        let cfg = cfg();
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(7));
        let mut s = Species::new(SpeciesId(0), g, 0);
        s.record_fitness(1.0, 1.0, 0);
        assert_eq!(s.stagnation(5), 5);
        s.record_fitness(2.0, 2.0, 5);
        assert_eq!(s.stagnation(5), 0);
        // No improvement: last_improved stays.
        s.record_fitness(1.5, 1.5, 9);
        assert_eq!(s.stagnation(9), 4);
    }
}
