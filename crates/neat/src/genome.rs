//! Genomes: collections of node and connection genes describing one
//! network topology, plus the genetic operators that evolve them.
//!
//! Operator semantics follow `neat-python` (the implementation the CLAN
//! paper modified): attribute-wise crossover from the fitter parent,
//! independent structural mutation probabilities, and a compatibility
//! distance normalized by the larger genome's gene count.

use crate::config::NeatConfig;
use crate::gene::{ConnGene, ConnKey, GenomeId, NodeGene, NodeId};
use rand::seq::IteratorRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One member of a NEAT population.
///
/// A genome owns its node genes (outputs + hidden; inputs are implicit,
/// following `neat-python`) and connection genes keyed by endpoint pair.
/// The genome's *size in genes* — nodes plus connections — is the unit of
/// both compute and communication cost throughout the CLAN reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    id: GenomeId,
    #[serde(
        serialize_with = "crate::serde_util::map_as_pairs",
        deserialize_with = "crate::serde_util::pairs_as_map"
    )]
    nodes: BTreeMap<NodeId, NodeGene>,
    #[serde(
        serialize_with = "crate::serde_util::map_as_pairs",
        deserialize_with = "crate::serde_util::pairs_as_map"
    )]
    conns: BTreeMap<ConnKey, ConnGene>,
    fitness: Option<f64>,
}

impl Genome {
    /// Creates an initial genome: one node gene per output, wired to the
    /// inputs according to `cfg.initial_connection`.
    pub fn new_initial<R: Rng + ?Sized>(cfg: &NeatConfig, id: GenomeId, rng: &mut R) -> Genome {
        let mut nodes = BTreeMap::new();
        for o in 0..cfg.num_outputs {
            nodes.insert(NodeId::output(o), Self::new_node(cfg, rng));
        }
        let mut conns = BTreeMap::new();
        use crate::config::InitialConnection as Ic;
        let include = |rng: &mut R, p: f64| -> bool { rng.gen::<f64>() < p };
        match cfg.initial_connection {
            Ic::Unconnected => {}
            Ic::Full => {
                for i in 0..cfg.num_inputs {
                    for o in 0..cfg.num_outputs {
                        let key = ConnKey::new(NodeId::input(i), NodeId::output(o));
                        conns.insert(
                            key,
                            ConnGene {
                                weight: cfg.weight.init(rng),
                                enabled: true,
                            },
                        );
                    }
                }
            }
            Ic::Partial(p) => {
                for i in 0..cfg.num_inputs {
                    for o in 0..cfg.num_outputs {
                        if include(rng, p) {
                            let key = ConnKey::new(NodeId::input(i), NodeId::output(o));
                            conns.insert(
                                key,
                                ConnGene {
                                    weight: cfg.weight.init(rng),
                                    enabled: true,
                                },
                            );
                        }
                    }
                }
            }
        }
        Genome {
            id,
            nodes,
            conns,
            fitness: None,
        }
    }

    fn new_node<R: Rng + ?Sized>(cfg: &NeatConfig, rng: &mut R) -> NodeGene {
        NodeGene {
            bias: cfg.bias.init(rng),
            response: cfg.response.init(rng),
            activation: Default::default(),
            aggregation: Default::default(),
        }
    }

    /// Reassembles a genome from its constituent gene tables (wire
    /// decoding, checkpoint restore). Fitness starts unset; callers that
    /// carried one re-apply it with [`set_fitness`](Genome::set_fitness).
    ///
    /// Structural validity is the caller's responsibility —
    /// [`check_invariants`](Genome::check_invariants) verifies it.
    pub fn from_parts(
        id: GenomeId,
        nodes: BTreeMap<NodeId, NodeGene>,
        conns: BTreeMap<ConnKey, ConnGene>,
    ) -> Genome {
        Genome {
            id,
            nodes,
            conns,
            fitness: None,
        }
    }

    /// This genome's identifier.
    pub fn id(&self) -> GenomeId {
        self.id
    }

    /// Reassigns the identifier (used when cloning elites into the next
    /// generation).
    pub fn set_id(&mut self, id: GenomeId) {
        self.id = id;
    }

    /// Last assigned fitness, if any.
    pub fn fitness(&self) -> Option<f64> {
        self.fitness
    }

    /// Assigns fitness (higher is better).
    pub fn set_fitness(&mut self, fitness: f64) {
        self.fitness = Some(fitness);
    }

    /// Clears fitness (done when a genome enters a new generation).
    pub fn clear_fitness(&mut self) {
        self.fitness = None;
    }

    /// Node genes (outputs + hidden), keyed by id.
    pub fn nodes(&self) -> &BTreeMap<NodeId, NodeGene> {
        &self.nodes
    }

    /// Connection genes keyed by endpoint pair.
    pub fn conns(&self) -> &BTreeMap<ConnKey, ConnGene> {
        &self.conns
    }

    /// Total gene count: node genes + connection genes.
    ///
    /// This is the paper's cost unit — a gene is one 32-bit datum, so this
    /// is also the float count transferred when the genome is communicated.
    pub fn num_genes(&self) -> u64 {
        (self.nodes.len() + self.conns.len()) as u64
    }

    /// Number of enabled connections (the genes inference touches each
    /// activation).
    pub fn num_enabled_conns(&self) -> u64 {
        self.conns.values().filter(|c| c.enabled).count() as u64
    }

    /// Canonical content hash: a stable 64-bit digest of every gene's
    /// identity and attributes, independent of the genome's [`id`] and
    /// [`fitness`] and of the order genes were inserted (the sorted gene
    /// maps define the canonical iteration order).
    ///
    /// Two genomes hash equal iff they are structurally equal gene for
    /// gene (up to the negligible 64-bit collision probability), so the
    /// hash can content-address evaluation results: an elite copied into
    /// the next generation under a fresh [`GenomeId`] hashes identically
    /// to its source. Floats contribute their exact bit patterns
    /// ([`f64::to_bits`]), so even a 1-ulp weight change produces an
    /// unrelated hash.
    ///
    /// The digest chains every field through
    /// [`splitmix64`](crate::rng::splitmix64), which makes it stable
    /// across platforms and releases of the standard library (unlike
    /// `std::hash::Hash`).
    ///
    /// [`id`]: Genome::id
    /// [`fitness`]: Genome::fitness
    pub fn content_hash(&self) -> u64 {
        use crate::rng::splitmix64;
        let mut h = splitmix64(0x0C04_7E47 ^ self.nodes.len() as u64);
        let mut mix = |v: u64| h = splitmix64(h ^ splitmix64(v));
        for (id, node) in &self.nodes {
            mix(id.0 as u64);
            mix(node.bias.to_bits());
            mix(node.response.to_bits());
            mix(node.activation as u64);
            mix(node.aggregation as u64);
        }
        mix(self.conns.len() as u64);
        for (key, conn) in &self.conns {
            mix(key.input.0 as u64);
            mix(key.output.0 as u64);
            mix(conn.weight.to_bits());
            mix(u64::from(conn.enabled));
        }
        h
    }

    /// `(hidden_nodes, connections)` — NEAT's usual complexity measure.
    pub fn complexity(&self, cfg: &NeatConfig) -> (usize, usize) {
        let hidden = self
            .nodes
            .keys()
            .filter(|n| !n.is_output(cfg.num_outputs))
            .count();
        (hidden, self.conns.len())
    }

    // ------------------------------------------------------------------
    // Compatibility distance
    // ------------------------------------------------------------------

    /// Genomic compatibility distance (`neat-python` formula): node-gene
    /// distance plus connection-gene distance, each being
    /// `(disjoint_coefficient * disjoint + weight_coefficient * Σ attr_dist) / max_gene_count`.
    pub fn distance(&self, other: &Genome, cfg: &NeatConfig) -> f64 {
        // Linear merge over the sorted gene maps (distance computations
        // dominate speciation, the second-costliest compute block).
        fn merged<K: Ord + Copy, G>(
            a: &BTreeMap<K, G>,
            b: &BTreeMap<K, G>,
            attr_dist: impl Fn(&G, &G) -> f64,
            disjoint_coef: f64,
            weight_coef: f64,
        ) -> f64 {
            let mut disjoint = 0usize;
            let mut matching = 0.0f64;
            let mut ia = a.iter().peekable();
            let mut ib = b.iter().peekable();
            loop {
                match (ia.peek(), ib.peek()) {
                    (Some((ka, ga)), Some((kb, gb))) => match ka.cmp(kb) {
                        std::cmp::Ordering::Equal => {
                            matching += attr_dist(ga, gb) * weight_coef;
                            ia.next();
                            ib.next();
                        }
                        std::cmp::Ordering::Less => {
                            disjoint += 1;
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            disjoint += 1;
                            ib.next();
                        }
                    },
                    (Some(_), None) => {
                        disjoint += 1;
                        ia.next();
                    }
                    (None, Some(_)) => {
                        disjoint += 1;
                        ib.next();
                    }
                    (None, None) => break,
                }
            }
            let max_len = a.len().max(b.len()).max(1) as f64;
            (disjoint_coef * disjoint as f64 + matching) / max_len
        }
        let node_d = merged(
            &self.nodes,
            &other.nodes,
            NodeGene::distance,
            cfg.compatibility_disjoint_coefficient,
            cfg.compatibility_weight_coefficient,
        );
        let conn_d = merged(
            &self.conns,
            &other.conns,
            ConnGene::distance,
            cfg.compatibility_disjoint_coefficient,
            cfg.compatibility_weight_coefficient,
        );
        node_d + conn_d
    }

    // ------------------------------------------------------------------
    // Crossover
    // ------------------------------------------------------------------

    /// Produces a child by crossover.
    ///
    /// `fitter` contributes all disjoint/excess genes; matching genes pick
    /// each attribute from either parent with probability 0.5. Callers must
    /// pass the higher-fitness parent first (ties broken deterministically
    /// by the caller).
    pub fn crossover<R: Rng + ?Sized>(
        fitter: &Genome,
        other: &Genome,
        child_id: GenomeId,
        rng: &mut R,
    ) -> Genome {
        let mut nodes = BTreeMap::new();
        for (k, g1) in &fitter.nodes {
            let gene = match other.nodes.get(k) {
                Some(g2) => NodeGene {
                    bias: if rng.gen::<bool>() { g1.bias } else { g2.bias },
                    response: if rng.gen::<bool>() {
                        g1.response
                    } else {
                        g2.response
                    },
                    activation: if rng.gen::<bool>() {
                        g1.activation
                    } else {
                        g2.activation
                    },
                    aggregation: if rng.gen::<bool>() {
                        g1.aggregation
                    } else {
                        g2.aggregation
                    },
                },
                None => *g1,
            };
            nodes.insert(*k, gene);
        }
        let mut conns = BTreeMap::new();
        for (k, g1) in &fitter.conns {
            let gene = match other.conns.get(k) {
                Some(g2) => ConnGene {
                    weight: if rng.gen::<bool>() {
                        g1.weight
                    } else {
                        g2.weight
                    },
                    enabled: if rng.gen::<bool>() {
                        g1.enabled
                    } else {
                        g2.enabled
                    },
                },
                None => *g1,
            };
            conns.insert(*k, gene);
        }
        Genome {
            id: child_id,
            nodes,
            conns,
            fitness: None,
        }
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Applies one full mutation pass: structural mutations (each with its
    /// configured probability) followed by attribute mutation of every
    /// gene. Feed-forward validity (acyclicity) is preserved.
    pub fn mutate<R: Rng + ?Sized>(&mut self, cfg: &NeatConfig, rng: &mut R) {
        if rng.gen::<f64>() < cfg.node_add_prob {
            self.mutate_add_node(cfg, rng);
        }
        if rng.gen::<f64>() < cfg.node_delete_prob {
            self.mutate_delete_node(cfg, rng);
        }
        if rng.gen::<f64>() < cfg.conn_add_prob {
            self.mutate_add_connection(cfg, rng);
        }
        if rng.gen::<f64>() < cfg.conn_delete_prob {
            self.mutate_delete_connection(rng);
        }
        self.mutate_attributes(cfg, rng);
    }

    /// Splits a random enabled connection: disables it and inserts a new
    /// hidden node with two fresh connections (1.0 into the node, the old
    /// weight out of it).
    pub fn mutate_add_node<R: Rng + ?Sized>(&mut self, cfg: &NeatConfig, rng: &mut R) {
        let Some((&key, _)) = self.conns.iter().filter(|(_, c)| c.enabled).choose(rng) else {
            return;
        };
        // Derive a collision-free node id for this split.
        let mut occurrence = 0u32;
        let new_id = loop {
            let cand = NodeId::derived_from_split(key, occurrence);
            if !self.nodes.contains_key(&cand) {
                break cand;
            }
            occurrence += 1;
        };
        let old_weight = self.conns.get_mut(&key).map(|c| {
            c.enabled = false;
            c.weight
        });
        let Some(old_weight) = old_weight else { return };
        self.nodes.insert(new_id, Self::new_node(cfg, rng));
        self.conns.insert(
            ConnKey::new(key.input, new_id),
            ConnGene {
                weight: 1.0,
                enabled: true,
            },
        );
        self.conns.insert(
            ConnKey::new(new_id, key.output),
            ConnGene {
                weight: old_weight,
                enabled: true,
            },
        );
    }

    /// Removes a random hidden node and all connections incident to it.
    /// Output nodes are never removed.
    pub fn mutate_delete_node<R: Rng + ?Sized>(&mut self, cfg: &NeatConfig, rng: &mut R) {
        let Some(&victim) = self
            .nodes
            .keys()
            .filter(|n| !n.is_output(cfg.num_outputs))
            .choose(rng)
        else {
            return;
        };
        self.nodes.remove(&victim);
        self.conns
            .retain(|k, _| k.input != victim && k.output != victim);
    }

    /// Adds a connection between a random source (input or node) and a
    /// random non-input destination. If the pair already exists the gene is
    /// re-enabled; pairs that would create a cycle are rejected.
    pub fn mutate_add_connection<R: Rng + ?Sized>(&mut self, cfg: &NeatConfig, rng: &mut R) {
        let sources: Vec<NodeId> = (0..cfg.num_inputs)
            .map(NodeId::input)
            .chain(self.nodes.keys().copied())
            .collect();
        let dests: Vec<NodeId> = self.nodes.keys().copied().collect();
        if sources.is_empty() || dests.is_empty() {
            return;
        }
        let input = sources[rng.gen_range(0..sources.len())];
        let output = dests[rng.gen_range(0..dests.len())];
        let key = ConnKey::new(input, output);
        if let Some(existing) = self.conns.get_mut(&key) {
            existing.enabled = true;
            return;
        }
        if input == output || Self::creates_cycle(self.conns.keys(), input, output) {
            return;
        }
        self.conns.insert(
            key,
            ConnGene {
                weight: cfg.weight.init(rng),
                enabled: true,
            },
        );
    }

    /// Removes a random connection gene.
    pub fn mutate_delete_connection<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if let Some(&key) = self.conns.keys().choose(rng) {
            self.conns.remove(&key);
        }
    }

    /// Mutates every gene's float attributes and (rarely) transfer
    /// functions and enabled flags, per the configured rates.
    pub fn mutate_attributes<R: Rng + ?Sized>(&mut self, cfg: &NeatConfig, rng: &mut R) {
        for gene in self.conns.values_mut() {
            gene.weight = cfg.weight.mutate(gene.weight, rng);
            if rng.gen::<f64>() < cfg.enabled_mutate_rate {
                gene.enabled = !gene.enabled;
            }
        }
        for gene in self.nodes.values_mut() {
            gene.bias = cfg.bias.mutate(gene.bias, rng);
            gene.response = cfg.response.mutate(gene.response, rng);
            if cfg.activation_mutate_rate > 0.0 && rng.gen::<f64>() < cfg.activation_mutate_rate {
                gene.activation =
                    crate::Activation::ALL[rng.gen_range(0..crate::Activation::ALL.len())];
            }
            if cfg.aggregation_mutate_rate > 0.0 && rng.gen::<f64>() < cfg.aggregation_mutate_rate {
                gene.aggregation =
                    crate::Aggregation::ALL[rng.gen_range(0..crate::Aggregation::ALL.len())];
            }
        }
    }

    /// Returns true if adding `input -> output` would create a directed
    /// cycle given the existing connection keys (enabled or not —
    /// disabled genes may be re-enabled later, so they count).
    pub fn creates_cycle<'a, I>(existing: I, input: NodeId, output: NodeId) -> bool
    where
        I: IntoIterator<Item = &'a ConnKey>,
    {
        if input == output {
            return true;
        }
        // Cycle iff a path output -> ... -> input already exists.
        let mut adjacency: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for k in existing {
            adjacency.entry(k.input).or_default().push(k.output);
        }
        let mut visited = BTreeSet::new();
        let mut queue = VecDeque::from([output]);
        while let Some(n) = queue.pop_front() {
            if n == input {
                return true;
            }
            if visited.insert(n) {
                if let Some(nexts) = adjacency.get(&n) {
                    queue.extend(nexts.iter().copied());
                }
            }
        }
        false
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// Verifies that all `num_outputs` output node genes exist, connection
    /// endpoints reference existing nodes (or inputs), no connection ends
    /// at an input, and the graph is acyclic.
    pub fn check_invariants(&self, cfg: &NeatConfig) -> Result<(), String> {
        for o in 0..cfg.num_outputs {
            if !self.nodes.contains_key(&NodeId::output(o)) {
                return Err(format!("missing output node {o}"));
            }
        }
        for key in self.conns.keys() {
            if key.output.is_input() {
                return Err(format!("connection {key} ends at an input"));
            }
            if !key.input.is_input() && !self.nodes.contains_key(&key.input) {
                return Err(format!("connection {key} has dangling source"));
            }
            if !self.nodes.contains_key(&key.output) {
                return Err(format!("connection {key} has dangling destination"));
            }
            if key.input.is_input() && (key.input.0 < -(cfg.num_inputs as i64)) {
                return Err(format!("connection {key} references input out of range"));
            }
        }
        // Acyclicity via Kahn's algorithm over all connection keys.
        let mut indeg: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut all: BTreeSet<NodeId> = self.nodes.keys().copied().collect();
        for key in self.conns.keys() {
            all.insert(key.input);
            all.insert(key.output);
            *indeg.entry(key.output).or_insert(0) += 1;
            adj.entry(key.input).or_default().push(key.output);
        }
        let mut queue: VecDeque<NodeId> = all
            .iter()
            .copied()
            .filter(|n| indeg.get(n).copied().unwrap_or(0) == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(n) = queue.pop_front() {
            seen += 1;
            if let Some(nexts) = adj.get(&n) {
                for &m in nexts {
                    let d = indeg.get_mut(&m).expect("edge target has indegree");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(m);
                    }
                }
            }
        }
        if seen != all.len() {
            return Err("connection graph contains a cycle".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialConnection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(inputs: usize, outputs: usize) -> NeatConfig {
        NeatConfig::builder(inputs, outputs).build().unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn initial_genome_full_wiring() {
        let cfg = cfg(3, 2);
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(1));
        assert_eq!(g.nodes().len(), 2);
        assert_eq!(g.conns().len(), 6);
        assert_eq!(g.num_genes(), 8);
        g.check_invariants(&cfg).unwrap();
    }

    #[test]
    fn initial_genome_unconnected() {
        let cfg = NeatConfig::builder(3, 2)
            .initial_connection(InitialConnection::Unconnected)
            .build()
            .unwrap();
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(1));
        assert_eq!(g.conns().len(), 0);
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn initial_genome_partial_between_bounds() {
        let cfg = NeatConfig::builder(10, 10)
            .initial_connection(InitialConnection::Partial(0.5))
            .build()
            .unwrap();
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(7));
        assert!(g.conns().len() < 100);
        assert!(!g.conns().is_empty());
    }

    #[test]
    fn distance_self_is_zero() {
        let cfg = cfg(4, 2);
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(2));
        assert_eq!(g.distance(&g, &cfg), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let cfg = cfg(4, 2);
        let a = Genome::new_initial(&cfg, GenomeId(0), &mut rng(3));
        let mut b = Genome::new_initial(&cfg, GenomeId(1), &mut rng(4));
        b.mutate_add_node(&cfg, &mut rng(5));
        let d1 = a.distance(&b, &cfg);
        let d2 = b.distance(&a, &cfg);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn add_node_splits_connection() {
        let cfg = cfg(2, 1);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(6));
        let conns_before = g.conns().len();
        let disabled_before = g.conns().values().filter(|c| !c.enabled).count();
        g.mutate_add_node(&cfg, &mut rng(7));
        assert_eq!(g.conns().len(), conns_before + 2);
        assert_eq!(
            g.conns().values().filter(|c| !c.enabled).count(),
            disabled_before + 1
        );
        assert_eq!(g.nodes().len(), 2);
        g.check_invariants(&cfg).unwrap();
    }

    #[test]
    fn add_node_twice_distinct_ids() {
        let cfg = cfg(1, 1);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(8));
        for s in 0..10 {
            g.mutate_add_node(&cfg, &mut rng(100 + s));
            g.check_invariants(&cfg).unwrap();
        }
        assert!(g.nodes().len() >= 3, "hidden nodes should accumulate");
    }

    #[test]
    fn delete_node_never_removes_outputs() {
        let cfg = cfg(2, 2);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(9));
        for s in 0..20 {
            g.mutate_delete_node(&cfg, &mut rng(200 + s));
        }
        assert_eq!(g.nodes().len(), 2, "outputs must survive");
        g.check_invariants(&cfg).unwrap();
    }

    #[test]
    fn delete_node_removes_incident_connections() {
        let cfg = cfg(1, 1);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(10));
        g.mutate_add_node(&cfg, &mut rng(11));
        assert_eq!(g.nodes().len(), 2);
        // Repeated deletion attempts eventually hit the hidden node.
        for s in 0..50 {
            g.mutate_delete_node(&cfg, &mut rng(300 + s));
            g.check_invariants(&cfg).unwrap();
        }
        assert_eq!(g.nodes().len(), 1);
        for key in g.conns().keys() {
            assert!(key.input.is_input() || g.nodes().contains_key(&key.input));
        }
    }

    #[test]
    fn add_connection_no_cycles_ever() {
        let cfg = cfg(3, 2);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(12));
        for s in 0..200 {
            let mut r = rng(400 + s);
            g.mutate_add_node(&cfg, &mut r);
            g.mutate_add_connection(&cfg, &mut r);
            g.check_invariants(&cfg).unwrap();
        }
    }

    #[test]
    fn creates_cycle_detects_two_edge_loop() {
        let a = NodeId::output(0);
        let b = NodeId(5);
        let existing = [ConnKey::new(a, b)];
        assert!(Genome::creates_cycle(existing.iter(), b, a));
        assert!(!Genome::creates_cycle(existing.iter(), a, b));
        assert!(Genome::creates_cycle(existing.iter(), a, a));
    }

    #[test]
    fn crossover_child_keys_subset_of_fitter() {
        let cfg = cfg(3, 1);
        let mut a = Genome::new_initial(&cfg, GenomeId(0), &mut rng(13));
        let mut b = Genome::new_initial(&cfg, GenomeId(1), &mut rng(14));
        a.mutate_add_node(&cfg, &mut rng(15));
        b.mutate_add_connection(&cfg, &mut rng(16));
        let child = Genome::crossover(&a, &b, GenomeId(2), &mut rng(17));
        for k in child.conns().keys() {
            assert!(a.conns().contains_key(k), "child conn {k} not in fitter");
        }
        for k in child.nodes().keys() {
            assert!(a.nodes().contains_key(k), "child node {k} not in fitter");
        }
        assert_eq!(child.id(), GenomeId(2));
        child.check_invariants(&cfg).unwrap();
    }

    #[test]
    fn crossover_matching_attrs_from_either_parent() {
        let cfg = cfg(2, 1);
        let mut a = Genome::new_initial(&cfg, GenomeId(0), &mut rng(18));
        let mut b = a.clone();
        b.set_id(GenomeId(1));
        for c in a.conns.values_mut() {
            c.weight = 1.0;
        }
        for c in b.conns.values_mut() {
            c.weight = -1.0;
        }
        let child = Genome::crossover(&a, &b, GenomeId(2), &mut rng(19));
        for c in child.conns().values() {
            assert!(c.weight == 1.0 || c.weight == -1.0);
        }
    }

    #[test]
    fn mutation_preserves_invariants_over_many_generations() {
        let cfg = cfg(4, 2);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(20));
        for s in 0..300 {
            g.mutate(&cfg, &mut rng(1000 + s));
            g.check_invariants(&cfg).unwrap();
        }
    }

    #[test]
    fn deterministic_mutation_same_seed() {
        let cfg = cfg(4, 2);
        let mut a = Genome::new_initial(&cfg, GenomeId(0), &mut rng(21));
        let mut b = a.clone();
        a.mutate(&cfg, &mut rng(22));
        b.mutate(&cfg, &mut rng(22));
        assert_eq!(a, b);
    }

    #[test]
    fn fitness_lifecycle() {
        let cfg = cfg(1, 1);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(23));
        assert_eq!(g.fitness(), None);
        g.set_fitness(3.5);
        assert_eq!(g.fitness(), Some(3.5));
        g.clear_fitness();
        assert_eq!(g.fitness(), None);
    }

    #[test]
    fn enabled_conn_count() {
        let cfg = cfg(2, 2);
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(24));
        assert_eq!(g.num_enabled_conns(), 4);
        g.mutate_add_node(&cfg, &mut rng(25));
        assert_eq!(g.num_enabled_conns(), 5, "split disables one, adds two");
    }

    #[test]
    fn content_hash_ignores_id_and_fitness() {
        let cfg = cfg(3, 2);
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut rng(30));
        let mut relabeled = g.clone();
        relabeled.set_id(GenomeId(999));
        relabeled.set_fitness(42.0);
        assert_eq!(g.content_hash(), relabeled.content_hash());
    }

    #[test]
    fn content_hash_changes_with_any_gene_attribute() {
        let cfg = cfg(2, 1);
        let base = Genome::new_initial(&cfg, GenomeId(0), &mut rng(31));
        let h = base.content_hash();

        let mut weight = base.clone();
        let key = *weight.conns().keys().next().unwrap();
        weight.conns.get_mut(&key).unwrap().weight += f64::EPSILON;
        assert_ne!(h, weight.content_hash(), "1-ulp weight change must show");

        let mut disabled = base.clone();
        disabled.conns.get_mut(&key).unwrap().enabled = false;
        assert_ne!(h, disabled.content_hash());

        let mut structural = base.clone();
        structural.mutate_add_node(&cfg, &mut rng(32));
        assert_ne!(h, structural.content_hash());
    }

    #[test]
    fn content_hash_is_insertion_order_independent() {
        // from_parts with maps built in different insertion orders must
        // hash identically: the sorted maps are the canonical form.
        let cfg = cfg(3, 2);
        let g = Genome::new_initial(&cfg, GenomeId(7), &mut rng(33));
        let mut nodes_rev = BTreeMap::new();
        for (k, v) in g.nodes().iter().rev() {
            nodes_rev.insert(*k, *v);
        }
        let mut conns_rev = BTreeMap::new();
        for (k, v) in g.conns().iter().rev() {
            conns_rev.insert(*k, *v);
        }
        let rebuilt = Genome::from_parts(GenomeId(8), nodes_rev, conns_rev);
        assert_eq!(g.content_hash(), rebuilt.content_hash());
    }
}
