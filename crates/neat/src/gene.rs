//! Gene primitives: typed identifiers, node genes, and connection genes.
//!
//! Terminology follows the CLAN paper (Table II): a *gene* is the basic
//! 32-bit building block — either a neuron (node gene) or a synapse
//! (connection gene). A *genome* is the collection of genes describing one
//! network topology.

use crate::activation::{Activation, Aggregation};
use crate::rng::splitmix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node gene.
///
/// Mirrors `neat-python`'s key scheme: inputs are negative
/// (`-1 ..= -n_in`), outputs are `0 ..= n_out - 1`, and hidden nodes are
/// positive. Hidden nodes created by *add-node* mutations receive ids
/// derived from the split connection's endpoints (see
/// [`NodeId::derived_from_split`]) so that the same structural innovation
/// gets the same id on every agent — a distributed-friendly replacement for
/// NEAT's global innovation counter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub i64);

impl NodeId {
    /// Floor of the id range reserved for hash-derived hidden nodes.
    ///
    /// Inputs/outputs and any statically allocated hidden nodes live far
    /// below this, so derived ids can never collide with them.
    pub const DERIVED_FLOOR: i64 = 1 << 32;

    /// The id of the `i`-th network input (0-based).
    #[inline]
    pub fn input(i: usize) -> NodeId {
        NodeId(-(i as i64) - 1)
    }

    /// The id of the `i`-th network output (0-based).
    #[inline]
    pub fn output(i: usize) -> NodeId {
        NodeId(i as i64)
    }

    /// Whether this id denotes a network input (inputs have no node gene).
    #[inline]
    pub fn is_input(self) -> bool {
        self.0 < 0
    }

    /// Whether this id denotes one of the first `n_out` outputs.
    #[inline]
    pub fn is_output(self, n_out: usize) -> bool {
        self.0 >= 0 && (self.0 as usize) < n_out
    }

    /// Deterministically derives the id of a hidden node created by
    /// splitting connection `key`, for the `occurrence`-th time within one
    /// genome lineage.
    ///
    /// Two agents splitting the same connection of the same genome produce
    /// the same id, preserving crossover alignment without any shared
    /// counter. The id is mapped into `[DERIVED_FLOOR, i64::MAX)`; with a
    /// 63-bit space and at most a few thousand hidden nodes per genome the
    /// collision probability is negligible, and collisions are handled by
    /// bumping `occurrence`.
    pub fn derived_from_split(key: ConnKey, occurrence: u32) -> NodeId {
        // Chained (non-commutative) mixing: direction and occurrence each
        // feed a fresh splitmix round, so (a, b) and (b, a) diverge even
        // for degenerate bit patterns like -1.
        let h = splitmix64(
            splitmix64(splitmix64(key.input.0 as u64) ^ key.output.0 as u64)
                ^ (occurrence as u64 ^ 0xA11CE),
        );
        // Map into the reserved positive range.
        let span = (i64::MAX - NodeId::DERIVED_FLOOR) as u64;
        NodeId(NodeId::DERIVED_FLOOR + (h % span) as i64)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a genome, unique within one population run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GenomeId(pub u64);

impl fmt::Display for GenomeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a species.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpeciesId(pub u32);

impl fmt::Display for SpeciesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Key of a connection gene: the ordered pair of endpoint nodes.
///
/// Following `neat-python`, historical markings are the endpoint pair
/// itself — two connections are "the same gene" iff they join the same
/// nodes, which makes crossover alignment deterministic with no registry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ConnKey {
    /// Source node (may be an input).
    pub input: NodeId,
    /// Destination node (never an input).
    pub output: NodeId,
}

impl ConnKey {
    /// Creates a key from endpoints.
    #[inline]
    pub fn new(input: NodeId, output: NodeId) -> ConnKey {
        ConnKey { input, output }
    }
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.input, self.output)
    }
}

/// A neuron gene: bias, response multiplier, and transfer functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeGene {
    /// Additive bias applied before activation.
    pub bias: f64,
    /// Multiplier applied to the aggregated input (`neat-python` response).
    pub response: f64,
    /// Activation function.
    pub activation: Activation,
    /// Aggregation function.
    pub aggregation: Aggregation,
}

impl Default for NodeGene {
    fn default() -> Self {
        NodeGene {
            bias: 0.0,
            response: 1.0,
            activation: Activation::default(),
            aggregation: Aggregation::default(),
        }
    }
}

impl NodeGene {
    /// Attribute distance to another node gene, as used by genome
    /// compatibility distance: `|Δbias| + |Δresponse|` plus one per
    /// differing transfer function.
    pub fn distance(&self, other: &NodeGene) -> f64 {
        let mut d = (self.bias - other.bias).abs() + (self.response - other.response).abs();
        if self.activation != other.activation {
            d += 1.0;
        }
        if self.aggregation != other.aggregation {
            d += 1.0;
        }
        d
    }
}

/// A synapse gene: weight plus an enabled flag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnGene {
    /// Connection weight.
    pub weight: f64,
    /// Disabled connections are retained in the genome (for historical
    /// alignment) but skipped during network construction.
    pub enabled: bool,
}

impl Default for ConnGene {
    fn default() -> Self {
        ConnGene {
            weight: 0.0,
            enabled: true,
        }
    }
}

impl ConnGene {
    /// Attribute distance: `|Δweight|` plus one if enabled flags differ.
    pub fn distance(&self, other: &ConnGene) -> f64 {
        let mut d = (self.weight - other.weight).abs();
        if self.enabled != other.enabled {
            d += 1.0;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_output_id_ranges_disjoint() {
        for i in 0..64 {
            assert!(NodeId::input(i).is_input());
            assert!(!NodeId::output(i).is_input());
            assert!(NodeId::output(i).is_output(64));
            assert!(!NodeId::input(i).is_output(64));
        }
    }

    #[test]
    fn derived_ids_above_floor_and_stable() {
        let key = ConnKey::new(NodeId::input(0), NodeId::output(0));
        let a = NodeId::derived_from_split(key, 0);
        let b = NodeId::derived_from_split(key, 0);
        assert_eq!(a, b);
        assert!(a.0 >= NodeId::DERIVED_FLOOR);
        let c = NodeId::derived_from_split(key, 1);
        assert_ne!(a, c, "occurrence must disambiguate repeated splits");
    }

    #[test]
    fn derived_ids_differ_by_key() {
        let k1 = ConnKey::new(NodeId::input(0), NodeId::output(0));
        let k2 = ConnKey::new(NodeId::input(1), NodeId::output(0));
        let k3 = ConnKey::new(NodeId::output(0), NodeId::input(0));
        assert_ne!(
            NodeId::derived_from_split(k1, 0),
            NodeId::derived_from_split(k2, 0)
        );
        assert_ne!(
            NodeId::derived_from_split(k1, 0),
            NodeId::derived_from_split(k3, 0),
            "direction matters"
        );
    }

    #[test]
    fn node_gene_distance_counts_function_changes() {
        let a = NodeGene::default();
        let mut b = a;
        assert_eq!(a.distance(&b), 0.0);
        b.bias = 1.5;
        assert!((a.distance(&b) - 1.5).abs() < 1e-12);
        b.activation = Activation::Tanh;
        assert!((a.distance(&b) - 2.5).abs() < 1e-12);
        b.aggregation = Aggregation::Max;
        assert!((a.distance(&b) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn conn_gene_distance_counts_enable_flip() {
        let a = ConnGene {
            weight: 1.0,
            enabled: true,
        };
        let b = ConnGene {
            weight: -1.0,
            enabled: false,
        };
        assert!((a.distance(&b) - 3.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::input(0).to_string(), "n-1");
        assert_eq!(NodeId::output(2).to_string(), "n2");
        assert_eq!(GenomeId(7).to_string(), "g7");
        assert_eq!(SpeciesId(3).to_string(), "s3");
        let k = ConnKey::new(NodeId::input(0), NodeId::output(1));
        assert_eq!(k.to_string(), "n-1->n1");
    }
}
