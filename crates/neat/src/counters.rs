//! Gene-level cost accounting (the CLAN paper's cost metric, §III-B).
//!
//! "Genome size is naturally defined by the number of genes it contains and
//! hence compute and communication costs grow proportionally to it; we use
//! the number of genes processed/communicated by different compute and
//! communication blocks as a measure of cost. A gene is a 32-bit
//! datastructure."
//!
//! [`CostCounters`] accumulates genes processed per compute block;
//! [`GenerationCosts`] is one generation's snapshot (the unit plotted in
//! the paper's Figure 3).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Genes processed by each NEAT compute block during one generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GenerationCosts {
    /// Genes touched while evaluating networks (per activation × timesteps).
    pub inference_genes: u64,
    /// Genes touched while computing compatibility distances.
    pub speciation_genes: u64,
    /// Genes copied/created during crossover and mutation.
    pub reproduction_genes: u64,
    /// Number of network activations performed.
    pub activations: u64,
    /// Number of genome-pair distance evaluations.
    pub distance_evals: u64,
    /// Number of episodes (genome evaluations) run.
    pub episodes: u64,
}

impl GenerationCosts {
    /// Total genes processed across all blocks.
    pub fn total_genes(&self) -> u64 {
        self.inference_genes + self.speciation_genes + self.reproduction_genes
    }

    /// Genes processed by the Evolution umbrella (speciation + reproduction),
    /// matching the paper's Inference-vs-Evolution split.
    pub fn evolution_genes(&self) -> u64 {
        self.speciation_genes + self.reproduction_genes
    }
}

impl Add for GenerationCosts {
    type Output = GenerationCosts;

    fn add(self, rhs: GenerationCosts) -> GenerationCosts {
        GenerationCosts {
            inference_genes: self.inference_genes + rhs.inference_genes,
            speciation_genes: self.speciation_genes + rhs.speciation_genes,
            reproduction_genes: self.reproduction_genes + rhs.reproduction_genes,
            activations: self.activations + rhs.activations,
            distance_evals: self.distance_evals + rhs.distance_evals,
            episodes: self.episodes + rhs.episodes,
        }
    }
}

impl AddAssign for GenerationCosts {
    fn add_assign(&mut self, rhs: GenerationCosts) {
        *self = *self + rhs;
    }
}

/// Accumulates [`GenerationCosts`] over a run, with a current in-progress
/// generation that can be snapshotted and reset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostCounters {
    current: GenerationCosts,
    history: Vec<GenerationCosts>,
}

impl CostCounters {
    /// Creates an empty counter set.
    pub fn new() -> CostCounters {
        CostCounters::default()
    }

    /// Records `genes` processed by inference across one activation.
    #[inline]
    pub fn record_inference(&mut self, genes: u64) {
        self.current.inference_genes += genes;
        self.current.activations += 1;
    }

    /// Records the completion of one evaluation episode.
    #[inline]
    pub fn record_episode(&mut self) {
        self.current.episodes += 1;
    }

    /// Records `genes` processed by one compatibility-distance computation.
    #[inline]
    pub fn record_distance(&mut self, genes: u64) {
        self.current.speciation_genes += genes;
        self.current.distance_evals += 1;
    }

    /// Records `genes` produced/copied during reproduction.
    #[inline]
    pub fn record_reproduction(&mut self, genes: u64) {
        self.current.reproduction_genes += genes;
    }

    /// The in-progress generation's costs so far.
    pub fn current(&self) -> GenerationCosts {
        self.current
    }

    /// Closes the current generation: pushes its costs into the history and
    /// resets the in-progress counters. Returns the closed snapshot.
    pub fn finish_generation(&mut self) -> GenerationCosts {
        let snap = self.current;
        self.history.push(snap);
        self.current = GenerationCosts::default();
        snap
    }

    /// Per-generation history, oldest first.
    pub fn history(&self) -> &[GenerationCosts] {
        &self.history
    }

    /// Sum over all closed generations plus the in-progress one.
    pub fn cumulative(&self) -> GenerationCosts {
        self.history
            .iter()
            .copied()
            .fold(self.current, |acc, g| acc + g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let mut c = CostCounters::new();
        c.record_inference(10);
        c.record_inference(5);
        c.record_distance(7);
        c.record_reproduction(3);
        c.record_episode();
        let g = c.current();
        assert_eq!(g.inference_genes, 15);
        assert_eq!(g.activations, 2);
        assert_eq!(g.speciation_genes, 7);
        assert_eq!(g.distance_evals, 1);
        assert_eq!(g.reproduction_genes, 3);
        assert_eq!(g.episodes, 1);
        assert_eq!(g.total_genes(), 25);
        assert_eq!(g.evolution_genes(), 10);
    }

    #[test]
    fn finish_generation_resets() {
        let mut c = CostCounters::new();
        c.record_inference(10);
        let snap = c.finish_generation();
        assert_eq!(snap.inference_genes, 10);
        assert_eq!(c.current(), GenerationCosts::default());
        assert_eq!(c.history().len(), 1);
    }

    #[test]
    fn cumulative_includes_in_progress() {
        let mut c = CostCounters::new();
        c.record_inference(10);
        c.finish_generation();
        c.record_inference(4);
        assert_eq!(c.cumulative().inference_genes, 14);
    }

    #[test]
    fn add_is_fieldwise() {
        let a = GenerationCosts {
            inference_genes: 1,
            speciation_genes: 2,
            reproduction_genes: 3,
            activations: 4,
            distance_evals: 5,
            episodes: 6,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.inference_genes, 2);
        assert_eq!(c.episodes, 12);
    }
}
