//! Checkpointing: persist and restore genomes and whole populations.
//!
//! The CLAN vision (paper Fig 1) starts with "a trained model/expert is
//! deployed onto the edge" — which requires experts to be serializable
//! artifacts. This module provides a stable JSON representation for
//! single genomes (deployable experts) and complete populations
//! (resumable learning state), with a format version for forward
//! compatibility.

use crate::error::NeatError;
use crate::genome::Genome;
use crate::population::Population;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Format version embedded in every checkpoint.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors produced by checkpoint I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed or incompatible checkpoint data.
    Format(String),
    /// The checkpoint is valid but violates NEAT invariants.
    Neat(NeatError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::Neat(e) => write!(f, "checkpoint contains invalid state: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Neat(e) => Some(e),
            CheckpointError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct GenomeCheckpoint {
    version: u32,
    genome: Genome,
}

#[derive(Serialize, Deserialize)]
struct PopulationCheckpoint {
    version: u32,
    population: Population,
}

/// Serializes a genome (a deployable expert) to JSON.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] if serialization fails (it cannot
/// for well-formed genomes).
pub fn genome_to_json(genome: &Genome) -> Result<String, CheckpointError> {
    serde_json::to_string_pretty(&GenomeCheckpoint {
        version: CHECKPOINT_VERSION,
        genome: genome.clone(),
    })
    .map_err(|e| CheckpointError::Format(e.to_string()))
}

/// Restores a genome from JSON produced by [`genome_to_json`].
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on malformed input or a version
/// mismatch.
pub fn genome_from_json(json: &str) -> Result<Genome, CheckpointError> {
    let cp: GenomeCheckpoint =
        serde_json::from_str(json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if cp.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
            cp.version
        )));
    }
    Ok(cp.genome)
}

/// Writes a genome checkpoint to `path`.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_genome<P: AsRef<Path>>(genome: &Genome, path: P) -> Result<(), CheckpointError> {
    fs::write(path, genome_to_json(genome)?)?;
    Ok(())
}

/// Reads a genome checkpoint from `path`.
///
/// # Errors
///
/// Propagates filesystem and format failures.
pub fn load_genome<P: AsRef<Path>>(path: P) -> Result<Genome, CheckpointError> {
    genome_from_json(&fs::read_to_string(path)?)
}

/// Serializes a full population (resumable learning state) to JSON.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] if serialization fails.
pub fn population_to_json(pop: &Population) -> Result<String, CheckpointError> {
    serde_json::to_string(&PopulationCheckpoint {
        version: CHECKPOINT_VERSION,
        population: pop.clone(),
    })
    .map_err(|e| CheckpointError::Format(e.to_string()))
}

/// Restores a population from JSON produced by [`population_to_json`].
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on malformed input or version
/// mismatch, and [`CheckpointError::Neat`] if the restored configuration
/// fails validation.
pub fn population_from_json(json: &str) -> Result<Population, CheckpointError> {
    let cp: PopulationCheckpoint =
        serde_json::from_str(json).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if cp.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
            cp.version
        )));
    }
    cp.population
        .config()
        .validate()
        .map_err(CheckpointError::Neat)?;
    Ok(cp.population)
}

/// Writes a population checkpoint to `path`.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_population<P: AsRef<Path>>(pop: &Population, path: P) -> Result<(), CheckpointError> {
    fs::write(path, population_to_json(pop)?)?;
    Ok(())
}

/// Reads a population checkpoint from `path`.
///
/// # Errors
///
/// Propagates filesystem and format failures.
pub fn load_population<P: AsRef<Path>>(path: P) -> Result<Population, CheckpointError> {
    population_from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeatConfig;
    use crate::gene::GenomeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_genome() -> (NeatConfig, Genome) {
        let cfg = NeatConfig::builder(3, 2).build().unwrap();
        let mut g = Genome::new_initial(&cfg, GenomeId(7), &mut StdRng::seed_from_u64(1));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            g.mutate(&cfg, &mut rng);
        }
        g.set_fitness(123.5);
        (cfg, g)
    }

    #[test]
    fn genome_round_trip_is_lossless() {
        let (_, g) = sample_genome();
        let json = genome_to_json(&g).unwrap();
        let restored = genome_from_json(&json).unwrap();
        assert_eq!(g, restored);
    }

    #[test]
    fn population_round_trip_continues_identically() {
        let cfg = NeatConfig::builder(2, 1)
            .population_size(12)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, 5);
        pop.evaluate(|net, _| net.activate(&[0.5, -0.5])[0]);
        pop.advance_generation();

        let json = population_to_json(&pop).unwrap();
        let mut restored = population_from_json(&json).unwrap();

        // Both copies must evolve identically from here.
        let advance = |p: &mut Population| {
            p.evaluate(|net, _| net.activate(&[0.5, -0.5])[0]);
            p.advance_generation();
            p.genomes().clone()
        };
        assert_eq!(advance(&mut pop), advance(&mut restored));
    }

    #[test]
    fn version_mismatch_rejected() {
        let (_, g) = sample_genome();
        let json = genome_to_json(&g)
            .unwrap()
            .replace("\"version\": 1", "\"version\": 99");
        let err = genome_from_json(&json);
        assert!(matches!(err, Err(CheckpointError::Format(_))), "{err:?}");
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            genome_from_json("{not json"),
            Err(CheckpointError::Format(_))
        ));
        assert!(matches!(
            population_from_json("[]"),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let (_, g) = sample_genome();
        let path = std::env::temp_dir().join("clan-neat-checkpoint-test.json");
        save_genome(&g, &path).unwrap();
        let restored = load_genome(&path).unwrap();
        assert_eq!(g, restored);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_genome("/nonexistent/dir/genome.json");
        assert!(matches!(err, Err(CheckpointError::Io(_))));
    }
}
