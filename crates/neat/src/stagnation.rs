//! Species stagnation: culling species whose fitness has not improved.
//!
//! Mirrors `neat-python`'s `DefaultStagnation`: a species that has gone
//! `max_stagnation` generations without improving its best fitness is
//! removed, except that the `species_elitism` fittest species are always
//! protected (so the population cannot go extinct by stagnation alone
//! while enough species exist).

use crate::config::NeatConfig;
use crate::gene::{GenomeId, SpeciesId};
use crate::genome::Genome;
use crate::species::SpeciesSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of a stagnation pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagnationOutcome {
    /// Species removed this pass, with their final mean fitness.
    pub removed: Vec<(SpeciesId, f64)>,
    /// Species remaining alive.
    pub survivors: Vec<SpeciesId>,
}

/// Updates per-species fitness from `genomes` and removes stagnant species.
///
/// Each species' fitness is the mean of its members' fitness; improvement
/// is measured against the species' best-ever *maximum* member fitness.
///
/// # Panics
///
/// Panics if any member genome lacks a fitness value; callers must
/// evaluate the whole population first (enforced by `Population`).
pub fn cull_stagnant_species(
    species: &mut SpeciesSet,
    genomes: &BTreeMap<GenomeId, Genome>,
    cfg: &NeatConfig,
    generation: u64,
) -> StagnationOutcome {
    // Record current fitness stats on every species.
    let sids: Vec<SpeciesId> = species.species().keys().copied().collect();
    for &sid in &sids {
        let s = species.species_mut().get_mut(&sid).expect("species exists");
        let fits: Vec<f64> = s
            .members()
            .iter()
            .map(|m| {
                genomes[m]
                    .fitness()
                    .expect("stagnation requires evaluated genomes")
            })
            .collect();
        debug_assert!(!fits.is_empty(), "empty species must be pruned earlier");
        let mean = fits.iter().sum::<f64>() / fits.len() as f64;
        let max = fits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        s.record_fitness(mean, max, generation);
    }

    // Rank species by current fitness (descending) to find the protected set.
    let mut ranked: Vec<(SpeciesId, f64)> = sids
        .iter()
        .map(|&sid| {
            let f = species.species()[&sid].fitness().expect("just recorded");
            (sid, f)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite fitness")
            .then(a.0.cmp(&b.0))
    });
    let protected: Vec<SpeciesId> = ranked
        .iter()
        .take(cfg.species_elitism)
        .map(|&(sid, _)| sid)
        .collect();

    let mut removed = Vec::new();
    for (sid, fit) in &ranked {
        let stagnant = species.species()[sid].stagnation(generation) > cfg.max_stagnation as u64;
        if stagnant && !protected.contains(sid) {
            species.remove(*sid);
            removed.push((*sid, *fit));
        }
    }
    let survivors = species.species().keys().copied().collect();
    StagnationOutcome { removed, survivors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CostCounters;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, threshold: f64) -> (NeatConfig, BTreeMap<GenomeId, Genome>, SpeciesSet) {
        let cfg = NeatConfig::builder(2, 1)
            .compatibility_threshold(threshold)
            .max_stagnation(3)
            .species_elitism(1)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut genomes: BTreeMap<GenomeId, Genome> = (0..n)
            .map(|i| {
                let id = GenomeId(i as u64);
                (id, Genome::new_initial(&cfg, id, &mut rng))
            })
            .collect();
        // Force divergence so we get multiple species.
        let ids: Vec<GenomeId> = genomes.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                let g = genomes.get_mut(id).unwrap();
                let mut r = StdRng::seed_from_u64(50 + i as u64);
                for _ in 0..25 {
                    g.mutate(&cfg, &mut r);
                }
            }
        }
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        set.speciate(&genomes, &cfg, 0, &mut counters);
        (cfg, genomes, set)
    }

    #[test]
    fn improving_species_survive() {
        let (cfg, mut genomes, mut set) = setup(10, 0.5);
        for gen in 0..10 {
            for (i, g) in genomes.values_mut().enumerate() {
                g.set_fitness(gen as f64 + i as f64 * 0.01); // always improving
            }
            let out = cull_stagnant_species(&mut set, &genomes, &cfg, gen);
            assert!(out.removed.is_empty(), "gen {gen}: {:?}", out.removed);
        }
    }

    #[test]
    fn stagnant_species_culled_after_limit() {
        let (cfg, mut genomes, mut set) = setup(10, 0.5);
        assert!(set.len() >= 2, "need multiple species for this test");
        for g in genomes.values_mut() {
            g.set_fitness(1.0); // never improves after gen 0
        }
        let mut total_removed = 0;
        for gen in 0..10 {
            let out = cull_stagnant_species(&mut set, &genomes, &cfg, gen);
            total_removed += out.removed.len();
            // Re-speciate survivors' members (simplified: reuse same genomes).
        }
        assert!(total_removed > 0, "stagnant species should be culled");
        assert!(!set.is_empty(), "species elitism must protect the best");
    }

    #[test]
    fn species_elitism_protects_best() {
        let (cfg, mut genomes, mut set) = setup(10, 0.5);
        for g in genomes.values_mut() {
            g.set_fitness(0.0);
        }
        for gen in 0..20 {
            cull_stagnant_species(&mut set, &genomes, &cfg, gen);
        }
        assert_eq!(set.len(), 1, "exactly the elite species survives");
    }
}
