//! Population: the per-generation NEAT loop, exposed both as a one-call
//! serial driver ([`Population::advance_generation`]) and as individual
//! phases (speciate / plan / reproduce / install) so the CLAN
//! orchestrators can distribute each compute block independently.

use crate::cache::{CachedEvaluation, FitnessCache};
use crate::config::NeatConfig;
use crate::counters::{CostCounters, GenerationCosts};
use crate::error::NeatError;
use crate::gene::GenomeId;
use crate::genome::Genome;
use crate::network::FeedForwardNetwork;
use crate::reproduction::{compute_plan, make_child, ChildSpec, GenerationPlan};
use crate::rng::{op_rng, OpTag};
use crate::species::{SpeciationOutcome, SpeciesSet};
use crate::stagnation::cull_stagnant_species;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of evaluating one genome on a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Fitness achieved (higher is better).
    pub fitness: f64,
    /// Number of network activations performed (timesteps), used for
    /// gene-level inference cost accounting.
    pub activations: u64,
}

impl From<f64> for Evaluation {
    /// Treats a bare fitness as a single-activation evaluation.
    fn from(fitness: f64) -> Self {
        Evaluation {
            fitness,
            activations: 1,
        }
    }
}

/// Distribution statistics of a population's fitness values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Maximum (the generation's best).
    pub best: f64,
    /// Minimum.
    pub worst: f64,
}

/// Summary of one completed generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationSummary {
    /// Index of the generation that just finished (0-based).
    pub generation: u64,
    /// Species count after speciation.
    pub num_species: usize,
    /// Best fitness in the evaluated population.
    pub best_fitness: f64,
    /// Gene-level costs incurred by this generation.
    pub costs: GenerationCosts,
    /// Whether the population went extinct and was re-seeded.
    pub extinction: bool,
    /// Fitness-cache hits during this generation's evaluation (0 unless
    /// [`Population::set_fitness_caching`] enabled the cache).
    #[serde(default)]
    pub cache_hits: u64,
    /// Fitness-cache lookups during this generation's evaluation.
    #[serde(default)]
    pub cache_lookups: u64,
}

impl GenerationSummary {
    /// Fraction of fitness lookups served from the cache this generation
    /// (0.0 when the cache never fielded a lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// A NEAT population with deterministic, distribution-friendly phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    cfg: NeatConfig,
    #[serde(
        serialize_with = "crate::serde_util::map_as_pairs",
        deserialize_with = "crate::serde_util::pairs_as_map"
    )]
    genomes: BTreeMap<GenomeId, Genome>,
    species: SpeciesSet,
    generation: u64,
    next_genome_id: u64,
    master_seed: u64,
    counters: CostCounters,
    best_ever: Option<Genome>,
    extinctions: u32,
    /// Content-addressed fitness cache, opt-in because it is only sound
    /// when the evaluation closure is content-deterministic (depends on
    /// nothing but the genome's content and the master seed). Not
    /// serialized: a restored population simply re-warms it.
    #[serde(skip)]
    fitness_cache: Option<FitnessCache>,
}

impl Population {
    /// Creates a population of `cfg.population_size` initial genomes.
    ///
    /// Genome `i` is built from the RNG stream
    /// `(seed, generation 0, i, InitGenome)`, so two populations with the
    /// same config and seed are identical.
    pub fn new(cfg: NeatConfig, seed: u64) -> Population {
        let mut genomes = BTreeMap::new();
        for i in 0..cfg.population_size {
            let id = GenomeId(i as u64);
            let mut rng = op_rng(seed, 0, id.0, OpTag::InitGenome);
            genomes.insert(id, Genome::new_initial(&cfg, id, &mut rng));
        }
        Population {
            next_genome_id: cfg.population_size as u64,
            cfg,
            genomes,
            species: SpeciesSet::new(),
            generation: 0,
            master_seed: seed,
            counters: CostCounters::new(),
            best_ever: None,
            extinctions: 0,
            fitness_cache: None,
        }
    }

    /// Enables or disables the content-addressed fitness cache consulted
    /// by [`evaluate`](Self::evaluate) and
    /// [`evaluate_parallel`](Self::evaluate_parallel) (default off).
    ///
    /// Only enable it when the evaluation closure is
    /// *content-deterministic*: its result must depend on nothing but the
    /// genome's content and the population's master seed (e.g. episode
    /// seeds derived via `clan_core::Evaluator::episode_seed`). A hit
    /// then returns the bit-identical fitness of the earlier evaluation
    /// without compiling or running the network.
    pub fn set_fitness_caching(&mut self, enabled: bool) {
        if enabled {
            if self.fitness_cache.is_none() {
                self.fitness_cache = Some(FitnessCache::new());
            }
        } else {
            self.fitness_cache = None;
        }
    }

    /// The fitness cache, when enabled.
    pub fn fitness_cache(&self) -> Option<&FitnessCache> {
        self.fitness_cache.as_ref()
    }

    /// The configuration in force.
    pub fn config(&self) -> &NeatConfig {
        &self.cfg
    }

    /// Current generation index (0 before any [`advance_generation`]).
    ///
    /// [`advance_generation`]: Self::advance_generation
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The master seed the population was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of times the population went extinct and was re-seeded.
    pub fn extinctions(&self) -> u32 {
        self.extinctions
    }

    /// Current genomes, keyed by id.
    pub fn genomes(&self) -> &BTreeMap<GenomeId, Genome> {
        &self.genomes
    }

    /// Looks up a genome.
    pub fn genome(&self, id: GenomeId) -> Option<&Genome> {
        self.genomes.get(&id)
    }

    /// Number of genomes (always `population_size` between phases).
    pub fn len(&self) -> usize {
        self.genomes.len()
    }

    /// Whether the population is empty (never true in normal operation).
    pub fn is_empty(&self) -> bool {
        self.genomes.is_empty()
    }

    /// Current species set.
    pub fn species(&self) -> &SpeciesSet {
        &self.species
    }

    /// Cost counters (inference/speciation/reproduction genes).
    pub fn counters(&self) -> &CostCounters {
        &self.counters
    }

    /// Mutable cost counters, for orchestrators that account externally
    /// performed work (e.g. distributed inference).
    pub fn counters_mut(&mut self) -> &mut CostCounters {
        &mut self.counters
    }

    /// Assigns fitness to one genome (used by distributed evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::UnknownGenome`] if `id` is not present.
    pub fn set_fitness(&mut self, id: GenomeId, fitness: f64) -> Result<(), NeatError> {
        match self.genomes.get_mut(&id) {
            Some(g) => {
                g.set_fitness(fitness);
                Ok(())
            }
            None => Err(NeatError::UnknownGenome { genome: id.0 }),
        }
    }

    /// Evaluates every genome with `evaluator` (phase `I`).
    ///
    /// The evaluator receives the compiled network and the genome and
    /// returns anything convertible to [`Evaluation`] (a bare `f64` counts
    /// as one activation). Inference cost is charged as
    /// `activations x genes_per_activation`.
    pub fn evaluate<F, E>(&mut self, mut evaluator: F)
    where
        F: FnMut(&FeedForwardNetwork, &Genome) -> E,
        E: Into<Evaluation>,
    {
        let ids: Vec<GenomeId> = self.genomes.keys().copied().collect();
        for id in ids {
            let genome = &self.genomes[&id];
            let hash = genome.content_hash();
            let cached = self
                .fitness_cache
                .as_mut()
                .and_then(|c| c.lookup(self.master_seed, hash));
            let (eval, genes_per_activation) = match cached {
                Some(c) => (c.evaluation, c.genes_per_activation),
                None => {
                    let net = FeedForwardNetwork::compile(genome, &self.cfg);
                    let eval: Evaluation = evaluator(&net, genome).into();
                    let genes_per_activation = net.genes_per_activation();
                    if let Some(c) = self.fitness_cache.as_mut() {
                        c.insert(
                            self.master_seed,
                            hash,
                            CachedEvaluation {
                                evaluation: eval,
                                genes_per_activation,
                            },
                        );
                    }
                    (eval, genes_per_activation)
                }
            };
            // Hits charge the identical inference cost a fresh run would
            // have, keeping cost counters bit-identical either way.
            self.counters
                .record_inference(eval.activations * genes_per_activation);
            self.counters.record_episode();
            self.genomes
                .get_mut(&id)
                .expect("id enumerated above")
                .set_fitness(eval.fitness);
        }
    }

    /// Applies a batch of pre-computed evaluations (phase `I` performed
    /// externally), charging inference cost exactly as
    /// [`evaluate`](Self::evaluate) does.
    ///
    /// Each item is `(genome, evaluation, genes_per_activation)`; the
    /// batch is applied in genome-id order regardless of input order, so
    /// any evaluation engine — serial, threaded, or remote — produces
    /// bit-identical [`CostCounters`] and fitness state.
    ///
    /// # Panics
    ///
    /// Panics if a result references a genome not in the population.
    pub fn evaluate_batch<I>(&mut self, results: I)
    where
        I: IntoIterator<Item = (GenomeId, Evaluation, u64)>,
    {
        let mut results: Vec<(GenomeId, Evaluation, u64)> = results.into_iter().collect();
        results.sort_by_key(|&(id, _, _)| id);
        for (id, eval, genes_per_activation) in results {
            // Externally computed results still warm the cache, so a
            // later local evaluation of the same content can hit.
            if let Some(cache) = self.fitness_cache.as_mut() {
                if let Some(g) = self.genomes.get(&id) {
                    cache.insert(
                        self.master_seed,
                        g.content_hash(),
                        CachedEvaluation {
                            evaluation: eval,
                            genes_per_activation,
                        },
                    );
                }
            }
            self.counters
                .record_inference(eval.activations * genes_per_activation);
            self.counters.record_episode();
            self.genomes
                .get_mut(&id)
                .expect("evaluation batch references unknown genome")
                .set_fitness(eval.fitness);
        }
    }

    /// Evaluates every genome across `threads` worker threads (phase `I`
    /// parallelized), bit-identical to [`evaluate`](Self::evaluate).
    ///
    /// `factory` is invoked once per worker to build that worker's
    /// evaluator closure, so per-worker state (an environment instance, a
    /// [`Scratch`](crate::network::Scratch) buffer) never crosses
    /// threads. Determinism comes from the population's order-independent
    /// seeding discipline: a genome's evaluation depends only on the
    /// genome itself, never on which worker ran it or in what order, and
    /// results are merged back in genome-id order.
    ///
    /// `threads <= 1` degrades to the serial path.
    ///
    /// This is the borrowed/scoped-thread counterpart of
    /// `clan_core::ParallelEvaluator` (a persistent pool for the CLAN
    /// orchestrators); both share the contiguous-shard,
    /// merge-in-id-order contract, pinned by the cross-crate
    /// equivalence tests.
    pub fn evaluate_parallel<Fac, F, E>(&mut self, threads: usize, factory: Fac)
    where
        Fac: Fn() -> F + Sync,
        F: FnMut(&FeedForwardNetwork, &Genome) -> E,
        E: Into<Evaluation>,
    {
        if threads <= 1 {
            let mut evaluator = factory();
            self.evaluate(move |net, genome| evaluator(net, genome));
            return;
        }
        // Serve cache hits on the coordinator before sharding, so workers
        // only ever see misses. The shard boundaries shift relative to a
        // cache-off run, but the merge-in-id-order contract keeps the
        // outcome bit-identical anyway.
        let mut hits: Vec<(GenomeId, Evaluation, u64)> = Vec::new();
        let ids: Vec<GenomeId> = match self.fitness_cache.as_mut() {
            None => self.genomes.keys().copied().collect(),
            Some(cache) => {
                let mut misses = Vec::new();
                for (id, g) in &self.genomes {
                    match cache.lookup(self.master_seed, g.content_hash()) {
                        Some(c) => hits.push((*id, c.evaluation, c.genes_per_activation)),
                        None => misses.push(*id),
                    }
                }
                misses
            }
        };
        if ids.is_empty() {
            self.evaluate_batch(hits);
            return;
        }
        let shard_len = ids.len().div_ceil(threads).max(1);
        let cfg = &self.cfg;
        let genomes = &self.genomes;
        let mut results: Vec<(GenomeId, Evaluation, u64)> = Vec::with_capacity(ids.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(shard_len)
                .enumerate()
                .map(|(i, shard)| {
                    let factory = &factory;
                    // Named so panics and profiler samples are
                    // attributable to a specific evaluation shard.
                    std::thread::Builder::new()
                        .name(format!("clan-eval-{i}"))
                        .spawn_scoped(scope, move || {
                            let mut evaluator = factory();
                            shard
                                .iter()
                                .map(|id| {
                                    let genome = &genomes[id];
                                    let net = FeedForwardNetwork::compile(genome, cfg);
                                    let eval: Evaluation = evaluator(&net, genome).into();
                                    (*id, eval, net.genes_per_activation())
                                })
                                .collect::<Vec<_>>()
                        })
                        .expect("spawning evaluation worker")
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("evaluation worker panicked"));
            }
        });
        results.extend(hits);
        self.evaluate_batch(results);
    }

    /// Best genome of the current (evaluated) population.
    pub fn best(&self) -> Option<&Genome> {
        self.genomes
            .values()
            .filter(|g| g.fitness().is_some())
            .max_by(|a, b| {
                a.fitness()
                    .partial_cmp(&b.fitness())
                    .expect("finite fitness")
                    .then(b.id().cmp(&a.id()))
            })
    }

    /// Best genome seen in any generation so far.
    pub fn best_ever(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    /// Fitness distribution of the current population, or `None` if any
    /// genome is unevaluated.
    pub fn fitness_stats(&self) -> Option<FitnessStats> {
        let fits: Option<Vec<f64>> = self.genomes.values().map(Genome::fitness).collect();
        let fits = fits?;
        if fits.is_empty() {
            return None;
        }
        let n = fits.len() as f64;
        let mean = fits.iter().sum::<f64>() / n;
        let var = fits.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / n;
        Some(FitnessStats {
            mean,
            stddev: var.sqrt(),
            best: fits.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            worst: fits.iter().copied().fold(f64::INFINITY, f64::min),
        })
    }

    /// Phase `S`: assigns every genome to a species.
    pub fn speciate(&mut self) -> SpeciationOutcome {
        self.species.speciate(
            &self.genomes,
            &self.cfg,
            self.generation,
            &mut self.counters,
        )
    }

    /// Phase `GP`: stagnation culling, fitness sharing, spawn counts, and
    /// parent selection.
    ///
    /// # Errors
    ///
    /// - [`NeatError::MissingFitness`] if any genome is unevaluated.
    /// - [`NeatError::Extinction`] if every species stagnated; callers
    ///   should then invoke [`reset_population`](Self::reset_population)
    ///   (which [`advance_generation`](Self::advance_generation) does
    ///   automatically when `reset_on_extinction` is set).
    pub fn plan_generation(&mut self) -> Result<GenerationPlan, NeatError> {
        for (id, g) in &self.genomes {
            if g.fitness().is_none() {
                return Err(NeatError::MissingFitness { genome: id.0 });
            }
        }
        // Track the best genome before the population is replaced.
        if let Some(best) = self.best() {
            if self
                .best_ever
                .as_ref()
                .and_then(Genome::fitness)
                .is_none_or(|b| best.fitness().expect("checked above") > b)
            {
                self.best_ever = Some(best.clone());
            }
        }
        cull_stagnant_species(&mut self.species, &self.genomes, &self.cfg, self.generation);
        if self.species.is_empty() {
            return Err(NeatError::Extinction);
        }
        Ok(compute_plan(
            &mut self.species,
            &self.genomes,
            &self.cfg,
            self.generation,
            self.master_seed,
            &mut self.next_genome_id,
        ))
    }

    /// Builds one child of `plan` from genomes resident in this
    /// population, charging reproduction cost.
    ///
    /// # Panics
    ///
    /// Panics if the spec's parents are not in the population.
    pub fn build_child(&mut self, spec: &ChildSpec) -> Genome {
        let parents = spec.parent_ids();
        let p1 = &self.genomes[&parents[0]];
        let p2 = parents.get(1).map(|id| &self.genomes[id]);
        let child = make_child(&self.cfg, spec, (p1, p2), self.master_seed, self.generation);
        self.counters.record_reproduction(child.num_genes());
        child
    }

    /// Phase `R` performed centrally: builds every child in `plan`.
    pub fn reproduce_centrally(&mut self, plan: &GenerationPlan) -> Vec<Genome> {
        plan.children
            .iter()
            .map(|spec| self.build_child(spec))
            .collect()
    }

    /// Installs the next generation's genomes and advances the generation
    /// counter. Children keep whatever ids their specs assigned.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or contains duplicate ids.
    pub fn install_next_generation(&mut self, children: Vec<Genome>) {
        assert!(!children.is_empty(), "next generation cannot be empty");
        let mut map = BTreeMap::new();
        for child in children {
            let prev = map.insert(child.id(), child);
            assert!(prev.is_none(), "duplicate child id");
        }
        self.genomes = map;
        self.generation += 1;
    }

    /// Allocates a fresh genome id (steady-state reproduction creates
    /// children one at a time instead of through a [`GenerationPlan`]).
    pub fn allocate_genome_id(&mut self) -> GenomeId {
        let id = GenomeId(self.next_genome_id);
        self.next_genome_id += 1;
        id
    }

    /// Removes one genome (steady-state eviction).
    ///
    /// # Errors
    ///
    /// [`NeatError::UnknownGenome`] if `id` is not present.
    pub fn remove_genome(&mut self, id: GenomeId) -> Result<Genome, NeatError> {
        self.genomes
            .remove(&id)
            .ok_or(NeatError::UnknownGenome { genome: id.0 })
    }

    /// Inserts one genome (steady-state insertion). The id must have come
    /// from [`allocate_genome_id`](Self::allocate_genome_id) so it cannot
    /// collide.
    ///
    /// # Panics
    ///
    /// Panics if a genome with the same id is already present.
    pub fn insert_genome(&mut self, genome: Genome) {
        self.next_genome_id = self.next_genome_id.max(genome.id().0 + 1);
        let prev = self.genomes.insert(genome.id(), genome);
        assert!(prev.is_none(), "duplicate genome id inserted");
    }

    /// Promotes the current best evaluated genome to `best_ever` if it
    /// improves on it, returning `true` on improvement.
    ///
    /// Generational runs get this bookkeeping from
    /// [`plan_generation`](Self::plan_generation); the steady-state loop
    /// has no planning phase and calls this after every fitness arrival.
    pub fn note_best_ever(&mut self) -> bool {
        let Some(best) = self.best() else {
            return false;
        };
        let improved = self
            .best_ever
            .as_ref()
            .and_then(Genome::fitness)
            .is_none_or(|b| best.fitness().expect("best is evaluated") > b);
        if improved {
            self.best_ever = Some(best.clone());
        }
        improved
    }

    /// Replaces the current genomes without advancing the generation
    /// counter.
    ///
    /// Used by migration/resynchronization schemes (e.g. CLAN_DDA's
    /// periodic global speciation) that shuffle genomes between
    /// subpopulations mid-generation. Species assignments are left to the
    /// next [`speciate`](Self::speciate) call.
    ///
    /// # Panics
    ///
    /// Panics if `genomes` is empty or contains duplicate ids.
    pub fn replace_genomes(&mut self, genomes: Vec<Genome>) {
        assert!(!genomes.is_empty(), "population cannot be empty");
        let mut map = BTreeMap::new();
        for g in genomes {
            self.next_genome_id = self.next_genome_id.max(g.id().0 + 1);
            let prev = map.insert(g.id(), g);
            assert!(prev.is_none(), "duplicate genome id");
        }
        self.genomes = map;
    }

    /// Re-seeds a fresh random population after total extinction.
    pub fn reset_population(&mut self) {
        self.extinctions += 1;
        let mut genomes = BTreeMap::new();
        for _ in 0..self.cfg.population_size {
            let id = GenomeId(self.next_genome_id);
            self.next_genome_id += 1;
            let mut rng = op_rng(
                self.master_seed,
                self.generation + 1,
                id.0,
                OpTag::InitGenome,
            );
            genomes.insert(id, Genome::new_initial(&self.cfg, id, &mut rng));
        }
        self.genomes = genomes;
        self.species = SpeciesSet::new();
        self.generation += 1;
    }

    /// Runs one full evolution step (phases `S`, `GP`, `R`) after the
    /// population has been evaluated, exactly as a serial (non-CLAN)
    /// deployment would.
    ///
    /// # Panics
    ///
    /// Panics if any genome lacks fitness, or on extinction when
    /// `reset_on_extinction` is disabled.
    pub fn advance_generation(&mut self) -> GenerationSummary {
        let speciation = self.speciate();
        let best_fitness = self
            .best()
            .and_then(Genome::fitness)
            .expect("advance_generation requires an evaluated population");
        let gen = self.generation;
        let (cache_hits, cache_lookups) = self
            .fitness_cache
            .as_mut()
            .map(FitnessCache::take_window)
            .unwrap_or((0, 0));
        match self.plan_generation() {
            Ok(plan) => {
                let children = self.reproduce_centrally(&plan);
                self.install_next_generation(children);
                GenerationSummary {
                    generation: gen,
                    num_species: speciation.species_count,
                    best_fitness,
                    costs: self.counters.finish_generation(),
                    extinction: false,
                    cache_hits,
                    cache_lookups,
                }
            }
            Err(NeatError::Extinction) => {
                assert!(
                    self.cfg.reset_on_extinction,
                    "population went extinct with reset_on_extinction disabled"
                );
                self.reset_population();
                GenerationSummary {
                    generation: gen,
                    num_species: 0,
                    best_fitness,
                    costs: self.counters.finish_generation(),
                    extinction: true,
                    cache_hits,
                    cache_lookups,
                }
            }
            Err(e) => panic!("generation planning failed: {e}"),
        }
    }

    /// Convenience driver: evaluate + advance for `generations` rounds,
    /// stopping early when `fitness_threshold` is reached.
    ///
    /// Returns the per-generation summaries.
    pub fn run<F, E>(
        &mut self,
        mut evaluator: F,
        generations: u64,
        fitness_threshold: Option<f64>,
    ) -> Vec<GenerationSummary>
    where
        F: FnMut(&FeedForwardNetwork, &Genome) -> E,
        E: Into<Evaluation>,
    {
        let mut summaries = Vec::new();
        for _ in 0..generations {
            self.evaluate(&mut evaluator);
            let summary = self.advance_generation();
            let reached = fitness_threshold.is_some_and(|t| summary.best_fitness >= t);
            summaries.push(summary);
            if reached {
                break;
            }
        }
        summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pop: usize) -> NeatConfig {
        NeatConfig::builder(2, 1)
            .population_size(pop)
            .build()
            .unwrap()
    }

    #[test]
    fn new_population_has_configured_size() {
        let pop = Population::new(cfg(30), 1);
        assert_eq!(pop.len(), 30);
        assert_eq!(pop.generation(), 0);
        assert!(!pop.is_empty());
    }

    #[test]
    fn same_seed_same_population() {
        let a = Population::new(cfg(20), 5);
        let b = Population::new(cfg(20), 5);
        assert_eq!(a.genomes(), b.genomes());
        let c = Population::new(cfg(20), 6);
        assert_ne!(a.genomes(), c.genomes());
    }

    #[test]
    fn evaluate_sets_all_fitness_and_counts() {
        let mut pop = Population::new(cfg(10), 2);
        pop.evaluate(|_net, _| Evaluation {
            fitness: 1.0,
            activations: 200,
        });
        assert!(pop.genomes().values().all(|g| g.fitness() == Some(1.0)));
        let costs = pop.counters().current();
        assert_eq!(costs.episodes, 10);
        assert_eq!(costs.activations, 10);
        // 2 inputs -> 1 output full wiring: 2 conns + 1 node = 3 genes/activation.
        assert_eq!(costs.inference_genes, 10 * 200 * 3);
    }

    #[test]
    fn advance_generation_replaces_population() {
        let mut pop = Population::new(cfg(12), 3);
        pop.evaluate(|_, g| g.id().0 as f64);
        let old_ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        let summary = pop.advance_generation();
        assert_eq!(pop.generation(), 1);
        assert_eq!(pop.len(), 12);
        assert_eq!(summary.best_fitness, 11.0);
        assert!(summary.num_species >= 1);
        let new_ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        assert!(new_ids.iter().all(|id| !old_ids.contains(id)));
        assert!(pop.genomes().values().all(|g| g.fitness().is_none()));
    }

    #[test]
    fn plan_generation_requires_fitness() {
        let mut pop = Population::new(cfg(10), 4);
        let err = pop.plan_generation();
        assert!(matches!(err, Err(NeatError::MissingFitness { .. })));
    }

    #[test]
    fn set_fitness_unknown_genome_errors() {
        let mut pop = Population::new(cfg(5), 5);
        assert!(matches!(
            pop.set_fitness(GenomeId(999), 1.0),
            Err(NeatError::UnknownGenome { genome: 999 })
        ));
        assert!(pop.set_fitness(GenomeId(0), 1.0).is_ok());
    }

    #[test]
    fn best_ever_tracks_across_generations() {
        let mut pop = Population::new(cfg(15), 6);
        for gen in 0..4 {
            pop.evaluate(|_, g| (g.id().0 % 7) as f64 + gen as f64);
            pop.advance_generation();
        }
        let be = pop.best_ever().unwrap();
        assert!(be.fitness().unwrap() >= 3.0);
    }

    #[test]
    fn fitness_improves_on_trivial_task() {
        // Maximize output for input 1.0 — easy gradient for evolution.
        let cfg = NeatConfig::builder(1, 1)
            .population_size(50)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, 7);
        let mut first_best = None;
        let mut last_best = 0.0;
        for _ in 0..15 {
            pop.evaluate(|net, _| net.activate(&[1.0])[0]);
            let s = pop.advance_generation();
            first_best.get_or_insert(s.best_fitness);
            last_best = s.best_fitness;
        }
        assert!(
            last_best >= first_best.unwrap(),
            "evolution should not regress on a static task: {first_best:?} -> {last_best}"
        );
        assert!(last_best > 0.9, "sigmoid output should approach 1.0");
    }

    #[test]
    fn run_stops_at_threshold() {
        let cfg = NeatConfig::builder(1, 1)
            .population_size(40)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, 8);
        let summaries = pop.run(|net, _| net.activate(&[1.0])[0], 50, Some(0.9));
        assert!(summaries.len() < 50, "should converge early");
        assert!(summaries.last().unwrap().best_fitness >= 0.9);
    }

    #[test]
    fn generation_cost_history_accumulates() {
        let mut pop = Population::new(cfg(10), 9);
        for _ in 0..3 {
            pop.evaluate(|_, _| 1.0);
            pop.advance_generation();
        }
        assert_eq!(pop.counters().history().len(), 3);
        for g in pop.counters().history() {
            assert!(g.inference_genes > 0);
            assert!(g.speciation_genes > 0);
            assert!(g.reproduction_genes > 0);
        }
    }

    #[test]
    fn fitness_stats_computed_over_population() {
        let mut pop = Population::new(cfg(4), 20);
        assert!(pop.fitness_stats().is_none(), "unevaluated population");
        let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            pop.set_fitness(*id, i as f64).unwrap();
        }
        let stats = pop.fitness_stats().unwrap();
        assert_eq!(stats.mean, 1.5);
        assert_eq!(stats.best, 3.0);
        assert_eq!(stats.worst, 0.0);
        assert!((stats.stddev - 1.118).abs() < 1e-3);
    }

    #[test]
    fn replace_genomes_keeps_generation_and_tracks_ids() {
        let mut pop = Population::new(cfg(6), 10);
        let gen_before = pop.generation();
        let replacement: Vec<Genome> = pop
            .genomes()
            .values()
            .take(4)
            .cloned()
            .enumerate()
            .map(|(i, mut g)| {
                g.set_id(GenomeId(500 + i as u64));
                g
            })
            .collect();
        pop.replace_genomes(replacement);
        assert_eq!(pop.generation(), gen_before);
        assert_eq!(pop.len(), 4);
        // Fresh ids must continue above the replaced range.
        pop.evaluate(|_, _| 1.0);
        pop.advance_generation();
        assert!(pop.genomes().keys().all(|id| id.0 >= 504));
    }

    #[test]
    #[should_panic(expected = "duplicate genome id")]
    fn replace_genomes_rejects_duplicates() {
        let mut pop = Population::new(cfg(4), 11);
        let g = pop.genomes().values().next().unwrap().clone();
        pop.replace_genomes(vec![g.clone(), g]);
    }

    #[test]
    fn extinction_resets_population_when_configured() {
        // max_stagnation 0 + species_elitism 0: any non-improving species
        // is culled at generation >= 1, forcing total extinction.
        let cfg = NeatConfig::builder(2, 1)
            .population_size(12)
            .max_stagnation(0)
            .species_elitism(0)
            .reset_on_extinction(true)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, 12);
        let mut saw_extinction = false;
        for _ in 0..4 {
            pop.evaluate(|_, _| 1.0); // constant fitness: never improves
            let summary = pop.advance_generation();
            saw_extinction |= summary.extinction;
            assert_eq!(pop.len(), 12, "reset must restore population size");
        }
        assert!(saw_extinction, "constant fitness must trigger extinction");
        assert!(pop.extinctions() >= 1);
    }

    #[test]
    #[should_panic(expected = "reset_on_extinction disabled")]
    fn extinction_panics_when_reset_disabled() {
        let cfg = NeatConfig::builder(2, 1)
            .population_size(8)
            .max_stagnation(0)
            .species_elitism(0)
            .reset_on_extinction(false)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, 13);
        for _ in 0..4 {
            pop.evaluate(|_, _| 1.0);
            pop.advance_generation();
        }
    }

    #[test]
    fn evaluate_parallel_matches_serial_exactly() {
        let make = || Population::new(cfg(23), 77);
        let evaluator = |net: &FeedForwardNetwork, g: &Genome| Evaluation {
            fitness: net.activate(&[0.4, -0.2])[0] + (g.id().0 % 3) as f64,
            activations: 1 + g.id().0 % 5,
        };
        let mut serial = make();
        serial.evaluate(evaluator);
        for threads in [1, 2, 4, 8] {
            let mut parallel = make();
            parallel.evaluate_parallel(threads, || evaluator);
            assert_eq!(
                serial.genomes(),
                parallel.genomes(),
                "{threads}-thread fitness must be bit-identical"
            );
            assert_eq!(
                serial.counters().current(),
                parallel.counters().current(),
                "{threads}-thread counters must be bit-identical"
            );
        }
    }

    #[test]
    fn evaluate_batch_applies_out_of_order_results() {
        let mut pop = Population::new(cfg(4), 14);
        let mut results: Vec<(GenomeId, Evaluation, u64)> = pop
            .genomes()
            .keys()
            .map(|&id| {
                (
                    id,
                    Evaluation {
                        fitness: id.0 as f64,
                        activations: 2,
                    },
                    3,
                )
            })
            .collect();
        results.reverse();
        pop.evaluate_batch(results);
        assert!(pop.genomes().values().all(|g| g.fitness().is_some()));
        let costs = pop.counters().current();
        assert_eq!(costs.episodes, 4);
        assert_eq!(costs.inference_genes, 4 * 2 * 3);
    }

    #[test]
    #[should_panic(expected = "unknown genome")]
    fn evaluate_batch_rejects_unknown_ids() {
        let mut pop = Population::new(cfg(4), 15);
        pop.evaluate_batch([(GenomeId(9999), Evaluation::from(1.0), 1)]);
    }

    #[test]
    fn serial_two_runs_bit_identical() {
        let run = |seed: u64| {
            let mut pop = Population::new(cfg(20), seed);
            for _ in 0..5 {
                pop.evaluate(|net, _| net.activate(&[0.3, -0.7])[0]);
                pop.advance_generation();
            }
            pop.genomes().clone()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    // A content-deterministic evaluation: depends only on the genome's
    // content (via the compiled network), so caching it is sound.
    fn content_eval(net: &FeedForwardNetwork, _g: &Genome) -> f64 {
        net.activate(&[0.3, -0.7])[0]
    }

    #[test]
    fn fitness_cache_is_bit_identical_and_reports_hits() {
        let mut cached = Population::new(cfg(20), 9);
        cached.set_fitness_caching(true);
        let mut plain = Population::new(cfg(20), 9);
        let mut total_hits = 0;
        for generation in 0..5 {
            cached.evaluate(content_eval);
            plain.evaluate(content_eval);
            let cs = cached.advance_generation();
            let ps = plain.advance_generation();
            total_hits += cs.cache_hits;
            assert_eq!(cs.cache_lookups, 20, "every genome is looked up");
            assert_eq!(ps.cache_lookups, 0, "disabled cache fields no lookups");
            assert_eq!(cs.best_fitness, ps.best_fitness, "generation {generation}");
            assert_eq!(cs.costs, ps.costs, "hits must charge identical costs");
        }
        assert!(total_hits > 0, "elites must hit the cache");
        assert_eq!(cached.genomes(), plain.genomes());
        assert!(cached.fitness_cache().unwrap().hits_total() > 0);
        assert!(plain.fitness_cache().is_none());
    }

    #[test]
    fn parallel_evaluation_with_cache_matches_serial_without() {
        let mut cached = Population::new(cfg(24), 11);
        cached.set_fitness_caching(true);
        let mut plain = Population::new(cfg(24), 11);
        for _ in 0..4 {
            cached.evaluate_parallel(3, || content_eval);
            plain.evaluate(content_eval);
            let cs = cached.advance_generation();
            let ps = plain.advance_generation();
            assert_eq!(cs.best_fitness, ps.best_fitness);
            assert_eq!(cs.costs, ps.costs);
        }
        assert_eq!(cached.genomes(), plain.genomes());
        assert!(cached.fitness_cache().unwrap().hits_total() > 0);
    }

    #[test]
    fn disabling_the_cache_drops_it() {
        let mut pop = Population::new(cfg(8), 3);
        pop.set_fitness_caching(true);
        pop.evaluate(content_eval);
        assert!(pop.fitness_cache().unwrap().lookups_total() > 0);
        pop.set_fitness_caching(false);
        assert!(pop.fitness_cache().is_none());
    }
}
