//! NEAT hyperparameter configuration.
//!
//! Field names and defaults track `neat-python`'s example configurations,
//! which is what the CLAN paper ran on its Raspberry Pis. As the paper
//! notes (§II-D), a single NEAT hyperparameter set works across tasks, so
//! the per-workload presets in `clan-envs` only change the input/output
//! counts and population size.

use crate::error::NeatError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution and mutation parameters for one float attribute
/// (weight, bias, or response).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Mean of the normal distribution used at initialization.
    pub init_mean: f64,
    /// Standard deviation used at initialization.
    pub init_stdev: f64,
    /// Lower clamp applied after every mutation.
    pub min_value: f64,
    /// Upper clamp applied after every mutation.
    pub max_value: f64,
    /// Standard deviation of the perturbation applied on mutation.
    pub mutate_power: f64,
    /// Probability that the attribute is perturbed during a mutation pass.
    pub mutate_rate: f64,
    /// Probability that the attribute is re-drawn from the init
    /// distribution instead of perturbed.
    pub replace_rate: f64,
}

impl AttrSpec {
    /// Draws an initial value.
    pub fn init<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = self.init_mean + gaussian(rng) * self.init_stdev;
        v.clamp(self.min_value, self.max_value)
    }

    /// Applies one mutation pass to `value`: replace with probability
    /// `replace_rate`, otherwise perturb with probability `mutate_rate`.
    pub fn mutate<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        let r: f64 = rng.gen();
        if r < self.replace_rate {
            self.init(rng)
        } else if r < self.replace_rate + self.mutate_rate {
            (value + gaussian(rng) * self.mutate_power).clamp(self.min_value, self.max_value)
        } else {
            value
        }
    }

    fn validate(&self, field: &'static str) -> Result<(), NeatError> {
        if self.min_value > self.max_value {
            return Err(NeatError::InvalidConfig {
                field,
                reason: format!("min {} exceeds max {}", self.min_value, self.max_value),
            });
        }
        for (name, p) in [
            ("mutate_rate", self.mutate_rate),
            ("replace_rate", self.replace_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NeatError::InvalidConfig {
                    field,
                    reason: format!("{name} {p} outside [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// How the initial population's genomes are wired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum InitialConnection {
    /// Every input connected to every output (`neat-python` `full_direct`).
    #[default]
    Full,
    /// No connections; structure must be discovered by mutation.
    Unconnected,
    /// Each potential input→output connection included with this probability.
    Partial(f64),
}

/// Complete NEAT hyperparameter set.
///
/// Construct via [`NeatConfig::builder`]; the builder validates ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeatConfig {
    /// Number of network inputs (observation dimension).
    pub num_inputs: usize,
    /// Number of network outputs (action dimension).
    pub num_outputs: usize,
    /// Number of genomes per generation.
    pub population_size: usize,
    /// Initial wiring of genomes.
    pub initial_connection: InitialConnection,

    /// Genome compatibility distance above which two genomes are in
    /// different species (the *initial* threshold when
    /// [`dynamic_compatibility`](Self::dynamic_compatibility) is on).
    pub compatibility_threshold: f64,
    /// Coefficient on the disjoint-gene fraction of the distance.
    pub compatibility_disjoint_coefficient: f64,
    /// Coefficient on the matching-gene attribute distance.
    pub compatibility_weight_coefficient: f64,
    /// Auto-adjust the live compatibility threshold (±10% per
    /// generation) to keep the species count inside the target band.
    ///
    /// The normalized distance metric makes absolute distances depend on
    /// genome size (4-gene XOR genomes vs 800-gene Atari genomes), so a
    /// fixed threshold cannot suit every workload; dynamic thresholding
    /// (as in SharpNEAT) makes speciation self-calibrating.
    pub dynamic_compatibility: bool,
    /// Lower edge of the target species band (scaled down for small
    /// populations).
    pub target_species_min: usize,
    /// Upper edge of the target species band.
    pub target_species_max: usize,

    /// Probability of adding a connection per mutation pass.
    pub conn_add_prob: f64,
    /// Probability of deleting a connection per mutation pass.
    pub conn_delete_prob: f64,
    /// Probability of adding a node (splitting a connection).
    pub node_add_prob: f64,
    /// Probability of deleting a hidden node.
    pub node_delete_prob: f64,
    /// Probability of flipping a connection's enabled flag.
    pub enabled_mutate_rate: f64,
    /// Probability of re-drawing a node's activation function.
    pub activation_mutate_rate: f64,
    /// Probability of re-drawing a node's aggregation function.
    pub aggregation_mutate_rate: f64,
    /// Connection weight attribute parameters.
    pub weight: AttrSpec,
    /// Node bias attribute parameters.
    pub bias: AttrSpec,
    /// Node response attribute parameters.
    pub response: AttrSpec,

    /// Number of top genomes per species copied unchanged.
    pub elitism: usize,
    /// Fraction of each species (by fitness rank) eligible as parents.
    pub survival_threshold: f64,
    /// Minimum spawn count allotted to a surviving species.
    pub min_species_size: usize,

    /// Generations without fitness improvement before a species is culled.
    pub max_stagnation: u32,
    /// Number of best species protected from stagnation culling.
    pub species_elitism: usize,
    /// Re-seed a fresh random population if every species stagnates.
    pub reset_on_extinction: bool,
}

impl NeatConfig {
    /// Starts a builder for a network with the given I/O dimensions.
    ///
    /// ```
    /// use clan_neat::NeatConfig;
    /// let cfg = NeatConfig::builder(4, 2).population_size(150).build()?;
    /// assert_eq!(cfg.num_inputs, 4);
    /// # Ok::<(), clan_neat::NeatError>(())
    /// ```
    pub fn builder(num_inputs: usize, num_outputs: usize) -> NeatConfigBuilder {
        NeatConfigBuilder::new(num_inputs, num_outputs)
    }

    /// Validates every field, returning the first violation found.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), NeatError> {
        if self.num_inputs == 0 {
            return Err(NeatError::InvalidConfig {
                field: "num_inputs",
                reason: "must be at least 1".into(),
            });
        }
        if self.num_outputs == 0 {
            return Err(NeatError::InvalidConfig {
                field: "num_outputs",
                reason: "must be at least 1".into(),
            });
        }
        if self.population_size < 2 {
            return Err(NeatError::InvalidConfig {
                field: "population_size",
                reason: "must be at least 2".into(),
            });
        }
        if self.compatibility_threshold <= 0.0 {
            return Err(NeatError::InvalidConfig {
                field: "compatibility_threshold",
                reason: "must be positive".into(),
            });
        }
        if self.target_species_min == 0 || self.target_species_min > self.target_species_max {
            return Err(NeatError::InvalidConfig {
                field: "target_species_min",
                reason: format!(
                    "species band [{}, {}] must be non-empty and start at 1",
                    self.target_species_min, self.target_species_max
                ),
            });
        }
        if let InitialConnection::Partial(p) = self.initial_connection {
            if !(0.0..=1.0).contains(&p) {
                return Err(NeatError::InvalidConfig {
                    field: "initial_connection",
                    reason: format!("partial probability {p} outside [0, 1]"),
                });
            }
        }
        for (field, p) in [
            ("conn_add_prob", self.conn_add_prob),
            ("conn_delete_prob", self.conn_delete_prob),
            ("node_add_prob", self.node_add_prob),
            ("node_delete_prob", self.node_delete_prob),
            ("enabled_mutate_rate", self.enabled_mutate_rate),
            ("activation_mutate_rate", self.activation_mutate_rate),
            ("aggregation_mutate_rate", self.aggregation_mutate_rate),
            ("survival_threshold", self.survival_threshold),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NeatError::InvalidConfig {
                    field,
                    reason: format!("probability {p} outside [0, 1]"),
                });
            }
        }
        if self.survival_threshold == 0.0 {
            return Err(NeatError::InvalidConfig {
                field: "survival_threshold",
                reason: "must be positive so every species keeps at least one parent".into(),
            });
        }
        self.weight.validate("weight")?;
        self.bias.validate("bias")?;
        self.response.validate("response")?;
        Ok(())
    }
}

impl Default for NeatConfig {
    /// The `neat-python`-flavored defaults used throughout the CLAN
    /// reproduction, for a 1-input / 1-output network.
    fn default() -> Self {
        NeatConfig {
            num_inputs: 1,
            num_outputs: 1,
            population_size: 150,
            initial_connection: InitialConnection::Full,
            compatibility_threshold: 3.0,
            compatibility_disjoint_coefficient: 1.0,
            compatibility_weight_coefficient: 0.5,
            dynamic_compatibility: true,
            target_species_min: 4,
            target_species_max: 18,
            conn_add_prob: 0.5,
            conn_delete_prob: 0.5,
            node_add_prob: 0.2,
            node_delete_prob: 0.2,
            enabled_mutate_rate: 0.01,
            activation_mutate_rate: 0.0,
            aggregation_mutate_rate: 0.0,
            weight: AttrSpec {
                init_mean: 0.0,
                init_stdev: 1.0,
                min_value: -30.0,
                max_value: 30.0,
                mutate_power: 0.5,
                mutate_rate: 0.8,
                replace_rate: 0.1,
            },
            bias: AttrSpec {
                init_mean: 0.0,
                init_stdev: 1.0,
                min_value: -30.0,
                max_value: 30.0,
                mutate_power: 0.5,
                mutate_rate: 0.7,
                replace_rate: 0.1,
            },
            response: AttrSpec {
                init_mean: 1.0,
                init_stdev: 0.0,
                min_value: -30.0,
                max_value: 30.0,
                mutate_power: 0.0,
                mutate_rate: 0.0,
                replace_rate: 0.0,
            },
            elitism: 2,
            survival_threshold: 0.2,
            min_species_size: 2,
            max_stagnation: 15,
            species_elitism: 2,
            reset_on_extinction: true,
        }
    }
}

/// Builder for [`NeatConfig`]; see [`NeatConfig::builder`].
#[derive(Debug, Clone)]
pub struct NeatConfigBuilder {
    cfg: NeatConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.cfg.$name = value;
                self
            }
        )+
    };
}

impl NeatConfigBuilder {
    /// Starts from defaults with the given I/O dimensions.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        NeatConfigBuilder {
            cfg: NeatConfig {
                num_inputs,
                num_outputs,
                ..NeatConfig::default()
            },
        }
    }

    builder_setters! {
        /// Sets the number of genomes per generation.
        population_size: usize,
        /// Sets the initial wiring scheme.
        initial_connection: InitialConnection,
        /// Sets the (initial) speciation distance threshold.
        compatibility_threshold: f64,
        /// Sets the disjoint-gene coefficient of the distance metric.
        compatibility_disjoint_coefficient: f64,
        /// Sets the matching-attribute coefficient of the distance metric.
        compatibility_weight_coefficient: f64,
        /// Enables/disables dynamic threshold adjustment.
        dynamic_compatibility: bool,
        /// Sets the lower edge of the target species band.
        target_species_min: usize,
        /// Sets the upper edge of the target species band.
        target_species_max: usize,
        /// Sets the add-connection mutation probability.
        conn_add_prob: f64,
        /// Sets the delete-connection mutation probability.
        conn_delete_prob: f64,
        /// Sets the add-node mutation probability.
        node_add_prob: f64,
        /// Sets the delete-node mutation probability.
        node_delete_prob: f64,
        /// Sets the enabled-flag flip probability.
        enabled_mutate_rate: f64,
        /// Sets the activation-function mutation probability.
        activation_mutate_rate: f64,
        /// Sets the aggregation-function mutation probability.
        aggregation_mutate_rate: f64,
        /// Sets weight attribute parameters.
        weight: AttrSpec,
        /// Sets bias attribute parameters.
        bias: AttrSpec,
        /// Sets response attribute parameters.
        response: AttrSpec,
        /// Sets per-species elitism.
        elitism: usize,
        /// Sets the surviving parent fraction.
        survival_threshold: f64,
        /// Sets the minimum spawn count per species.
        min_species_size: usize,
        /// Sets the stagnation limit in generations.
        max_stagnation: u32,
        /// Sets how many top species are immune to stagnation.
        species_elitism: usize,
        /// Sets whether extinction re-seeds a fresh population.
        reset_on_extinction: bool,
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::InvalidConfig`] if any field is out of range.
    pub fn build(self) -> Result<NeatConfig, NeatError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_config_is_valid() {
        NeatConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_sets_dimensions() {
        let cfg = NeatConfig::builder(4, 2).build().unwrap();
        assert_eq!((cfg.num_inputs, cfg.num_outputs), (4, 2));
    }

    #[test]
    fn builder_rejects_zero_population() {
        let err = NeatConfig::builder(1, 1).population_size(0).build();
        assert!(matches!(
            err,
            Err(NeatError::InvalidConfig {
                field: "population_size",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_bad_probability() {
        let err = NeatConfig::builder(1, 1).conn_add_prob(1.5).build();
        assert!(matches!(err, Err(NeatError::InvalidConfig { .. })));
    }

    #[test]
    fn builder_rejects_zero_inputs() {
        assert!(NeatConfig::builder(0, 1).build().is_err());
        assert!(NeatConfig::builder(1, 0).build().is_err());
    }

    #[test]
    fn builder_rejects_partial_out_of_range() {
        let err = NeatConfig::builder(1, 1)
            .initial_connection(InitialConnection::Partial(1.2))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn attr_init_respects_clamp() {
        let spec = AttrSpec {
            init_mean: 100.0,
            init_stdev: 1.0,
            min_value: -1.0,
            max_value: 1.0,
            mutate_power: 0.5,
            mutate_rate: 0.5,
            replace_rate: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = spec.init(&mut rng);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn attr_mutate_stays_in_bounds() {
        let spec = NeatConfig::default().weight;
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = 0.0;
        for _ in 0..1000 {
            v = spec.mutate(v, &mut rng);
            assert!((spec.min_value..=spec.max_value).contains(&v));
        }
    }

    #[test]
    fn attr_mutate_zero_rates_is_identity() {
        let spec = AttrSpec {
            mutate_rate: 0.0,
            replace_rate: 0.0,
            ..NeatConfig::default().weight
        };
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..50 {
            let v = i as f64 / 10.0;
            assert_eq!(spec.mutate(v, &mut rng), v);
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
