//! Deterministic, order-independent random-number derivation.
//!
//! CLAN distributes reproduction across agents, so the usual "one RNG,
//! consumed in program order" approach would make results depend on which
//! agent created which child, and in what order. Instead, every stochastic
//! operation derives a fresh [`rand::rngs::StdRng`] from the master seed and
//! a list of integer *tags* (generation number, child id, operation code)
//! using the splitmix64 finalizer. Identical tags ⇒ identical stream, no
//! matter where or when the operation runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixing function.
///
/// Used as the core of seed derivation; see [`derive_seed`].
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a sequence of tags.
///
/// The derivation folds each tag through [`splitmix64`], so any change to
/// any tag (or the ordering of tags) produces an unrelated seed.
///
/// ```
/// use clan_neat::rng::derive_seed;
/// let a = derive_seed(7, &[1, 2]);
/// let b = derive_seed(7, &[2, 1]);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(7, &[1, 2]));
/// ```
#[inline]
pub fn derive_seed(master: u64, tags: &[u64]) -> u64 {
    const SEED_SALT: u64 = 0x00C1_A12E_ED5E_ED00;
    let mut state = splitmix64(master ^ SEED_SALT);
    for &t in tags {
        state = splitmix64(state ^ splitmix64(t));
    }
    state
}

/// Operation tags used to partition the RNG stream by purpose.
///
/// Keeping these in one place guarantees that two different operations can
/// never accidentally share a derived stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum OpTag {
    /// Initial population construction.
    InitGenome = 1,
    /// Crossover of two parents into a child.
    Crossover = 2,
    /// Mutation of a freshly created child.
    Mutation = 3,
    /// Parent selection during generation planning.
    ParentSelect = 4,
    /// Tie-breaking and shuffling inside speciation.
    Speciation = 5,
    /// Environment stochasticity (initial state jitter).
    Environment = 6,
    /// Steady-state tournament selection (async mode; the `generation`
    /// tag carries the reproduction-event sequence number).
    Tournament = 7,
    /// Virtual-time latency sampling in the async simulation layer (the
    /// tags carry the agent index and per-agent dispatch counter).
    Latency = 8,
}

/// Builds a deterministic [`StdRng`] for an operation on an entity.
///
/// `entity` is typically a genome id; `generation` scopes the stream so the
/// same genome id in different generations gets fresh randomness.
pub fn op_rng(master: u64, generation: u64, entity: u64, op: OpTag) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, &[generation, entity, op as u64]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_stable() {
        // Known-answer test so cross-platform determinism regressions are loud.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn derive_seed_distinguishes_tags() {
        let s = 0xDEAD_BEEF;
        assert_ne!(derive_seed(s, &[0]), derive_seed(s, &[1]));
        assert_ne!(derive_seed(s, &[0, 1]), derive_seed(s, &[1, 0]));
        assert_ne!(derive_seed(s, &[]), derive_seed(s, &[0]));
    }

    #[test]
    fn derive_seed_distinguishes_masters() {
        assert_ne!(derive_seed(1, &[5, 5]), derive_seed(2, &[5, 5]));
    }

    #[test]
    fn op_rng_reproducible() {
        let mut a = op_rng(9, 3, 77, OpTag::Crossover);
        let mut b = op_rng(9, 3, 77, OpTag::Crossover);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn op_rng_streams_disjoint_by_op() {
        let mut a = op_rng(9, 3, 77, OpTag::Crossover);
        let mut b = op_rng(9, 3, 77, OpTag::Mutation);
        // Not a proof, but 64 bits colliding would be remarkable.
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
