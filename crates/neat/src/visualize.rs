//! Genome visualization: Graphviz DOT export.
//!
//! Evolved topologies are the whole point of NEAT; being able to *look*
//! at a champion is table stakes for a usable library. [`genome_to_dot`]
//! renders inputs as boxes, outputs as double circles, hidden nodes as
//! circles, and connections with weight-proportional pen widths (disabled
//! genes dashed).

use crate::config::NeatConfig;
use crate::gene::NodeId;
use crate::genome::Genome;
use std::fmt::Write as _;

/// Renders `genome` as a Graphviz `digraph`.
///
/// Feed the output to `dot -Tpng genome.dot -o genome.png`.
pub fn genome_to_dot(genome: &Genome, cfg: &NeatConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph genome_{} {{", genome.id().0);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontsize=10];");

    // Inputs.
    let _ = writeln!(
        out,
        "  subgraph cluster_inputs {{ label=\"inputs\"; color=gray;"
    );
    for i in 0..cfg.num_inputs {
        let id = NodeId::input(i);
        let _ = writeln!(out, "    \"{}\" [shape=box, label=\"in{}\"];", id, i);
    }
    let _ = writeln!(out, "  }}");

    // Outputs and hidden nodes.
    for (id, gene) in genome.nodes() {
        let shape = if id.is_output(cfg.num_outputs) {
            "doublecircle"
        } else {
            "circle"
        };
        let label = if id.is_output(cfg.num_outputs) {
            format!("out{}\\nb={:.2}", id.0, gene.bias)
        } else {
            format!("h\\nb={:.2}", gene.bias)
        };
        let _ = writeln!(out, "  \"{}\" [shape={}, label=\"{}\"];", id, shape, label);
    }

    // Connections.
    for (key, gene) in genome.conns() {
        let style = if gene.enabled { "solid" } else { "dashed" };
        let color = if gene.weight >= 0.0 {
            "forestgreen"
        } else {
            "crimson"
        };
        let width = (gene.weight.abs() / 3.0).clamp(0.3, 3.0);
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [style={}, color={}, penwidth={:.2}, label=\"{:.2}\"];",
            key.input, key.output, style, color, width, gene.weight
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gene::GenomeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dot_contains_all_genes() {
        let cfg = NeatConfig::builder(2, 1).build().unwrap();
        let mut g = Genome::new_initial(&cfg, GenomeId(3), &mut StdRng::seed_from_u64(1));
        g.mutate_add_node(&cfg, &mut StdRng::seed_from_u64(2));
        let dot = genome_to_dot(&g, &cfg);
        assert!(dot.starts_with("digraph genome_3 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("shape=box").count(), 2, "two inputs");
        assert_eq!(dot.matches("doublecircle").count(), 1, "one output");
        assert_eq!(
            dot.matches(" -> ").count(),
            g.conns().len(),
            "every connection rendered"
        );
        assert!(dot.contains("dashed"), "split leaves a disabled gene");
    }

    #[test]
    fn dot_is_stable_for_same_genome() {
        let cfg = NeatConfig::builder(3, 2).build().unwrap();
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(4));
        assert_eq!(genome_to_dot(&g, &cfg), genome_to_dot(&g, &cfg));
    }
}
