//! Barrier-free steady-state reproduction (the async CLAN mode).
//!
//! Generational NEAT ends every round with a gather barrier: the whole
//! population must be evaluated before planning (`GP`) runs. The CLAN
//! paper's asynchronous design removes that barrier — each fitness
//! arrival immediately triggers one reproduction event: two tournaments
//! pick parents from the evaluated members, a child is built on a fresh
//! id, and it *insert-replaces* the worst evaluated genome. There are no
//! generations and no species bookkeeping; selection pressure comes
//! entirely from the tournaments and the replace-worst rule.
//!
//! Two invariants hold for every [`steady_state_insert`] (pinned by
//! proptests in the workspace's `tests/async_steady_state.rs`):
//!
//! 1. **Size conservation** — exactly one genome is evicted for the one
//!    inserted, so the population never grows or shrinks.
//! 2. **Champion protection** — the current best evaluated genome is
//!    never the eviction victim, so the resident champion (and therefore
//!    the lineage behind `best_ever`) always survives to parent again.
//!
//! Determinism: every stochastic choice draws from
//! `op_rng(master_seed, event, 0, OpTag::Tournament)`, where `event` is
//! the reproduction-event sequence number, and the child itself is built
//! by the same [`make_child`](crate::reproduction::make_child) stream the
//! generational modes use. Replaying the same *sequence* of events
//! reproduces the same population bit-for-bit — which is exactly what the
//! virtual-time layer in `clan-core` exploits to make an async run
//! reproducible for a fixed `(seed, latency schedule)`.

use crate::gene::{GenomeId, SpeciesId};
use crate::genome::Genome;
use crate::population::Population;
use crate::reproduction::{ChildKind, ChildSpec};
use crate::rng::{op_rng, OpTag};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of one steady-state reproduction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertReport {
    /// Id of the freshly created (unevaluated) child.
    pub child: GenomeId,
    /// The fitter parent (ties broken by lower id).
    pub parent1: GenomeId,
    /// The other parent (may equal `parent1`).
    pub parent2: GenomeId,
    /// The evaluated genome the child replaced.
    pub evicted: GenomeId,
}

/// Deterministic tournament over the *evaluated* members: samples
/// `size` entrants (with replacement, as `evolve_async`-style loops do)
/// and returns the fittest, ties broken toward the lower id. `None` if
/// nothing is evaluated yet.
pub fn tournament_select<R: Rng>(pop: &Population, size: usize, rng: &mut R) -> Option<GenomeId> {
    let evaluated: Vec<(GenomeId, f64)> = pop
        .genomes()
        .iter()
        .filter_map(|(id, g)| g.fitness().map(|f| (*id, f)))
        .collect();
    if evaluated.is_empty() {
        return None;
    }
    let size = size.max(1);
    let mut best: Option<(GenomeId, f64)> = None;
    for _ in 0..size {
        let pick = evaluated[rng.gen_range(0..evaluated.len())];
        best = Some(match best {
            Some(cur) if pick.1 > cur.1 || (pick.1 == cur.1 && pick.0 < cur.0) => pick,
            Some(cur) => cur,
            None => pick,
        });
    }
    best.map(|(id, _)| id)
}

/// The genome the next insertion will evict: the worst evaluated member
/// (ties broken toward the *higher* id, evicting the younger of equals),
/// never the current best. `None` if fewer than two members are
/// evaluated — there is no victim that isn't the champion.
///
/// Unevaluated members (children still in flight on some agent) are
/// never victims either: evicting them would orphan a pending result.
pub fn eviction_victim(pop: &Population) -> Option<GenomeId> {
    let protect = pop.best()?.id();
    pop.genomes()
        .iter()
        .filter(|(id, g)| g.fitness().is_some() && **id != protect)
        .min_by(|(ia, a), (ib, b)| {
            a.fitness()
                .partial_cmp(&b.fitness())
                .expect("finite fitness")
                .then(ib.cmp(ia))
        })
        .map(|(id, _)| *id)
}

/// One steady-state reproduction event, deterministic in
/// `(master_seed, event)`: tournament-selects two parents, builds a child
/// on a fresh id, and insert-replaces the [`eviction_victim`]. The child
/// is left unevaluated — the caller dispatches it for evaluation.
///
/// Returns `None` (and leaves the population untouched) when fewer than
/// two members are evaluated, since eviction would have to take the
/// champion.
pub fn steady_state_insert(
    pop: &mut Population,
    tournament_size: usize,
    event: u64,
) -> Option<InsertReport> {
    let victim = eviction_victim(pop)?;
    let mut rng = op_rng(pop.master_seed(), event, 0, OpTag::Tournament);
    let a = tournament_select(pop, tournament_size, &mut rng)?;
    let b = tournament_select(pop, tournament_size, &mut rng)?;
    let fit = |id: GenomeId| pop.genome(id).and_then(Genome::fitness).expect("evaluated");
    let (parent1, parent2) = if fit(b) > fit(a) || (fit(b) == fit(a) && b < a) {
        (b, a)
    } else {
        (a, b)
    };
    let spec = ChildSpec {
        child_id: pop.allocate_genome_id(),
        species: SpeciesId(0),
        kind: ChildKind::Crossover { parent1, parent2 },
    };
    let child = pop.build_child(&spec);
    pop.remove_genome(victim).expect("victim is resident");
    pop.insert_genome(child);
    Some(InsertReport {
        child: spec.child_id,
        parent1,
        parent2,
        evicted: victim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeatConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn evaluated_pop(n: usize, seed: u64) -> Population {
        let cfg = NeatConfig::builder(2, 1)
            .population_size(n)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, seed);
        let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            pop.set_fitness(*id, i as f64).unwrap();
        }
        pop
    }

    #[test]
    fn tournament_prefers_fitter_entrants() {
        let pop = evaluated_pop(8, 3);
        // A tournament as large as the population must return the champion.
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_best = false;
        for _ in 0..32 {
            let winner = tournament_select(&pop, 64, &mut rng).unwrap();
            saw_best |= winner == pop.best().unwrap().id();
        }
        assert!(saw_best, "a saturated tournament should find the champion");
    }

    #[test]
    fn tournament_is_deterministic_in_its_rng() {
        let pop = evaluated_pop(10, 4);
        let a = tournament_select(&pop, 3, &mut StdRng::seed_from_u64(9));
        let b = tournament_select(&pop, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn victim_is_worst_and_never_champion() {
        let pop = evaluated_pop(6, 5);
        let victim = eviction_victim(&pop).unwrap();
        let worst = pop
            .genomes()
            .iter()
            .min_by(|a, b| a.1.fitness().partial_cmp(&b.1.fitness()).unwrap())
            .map(|(id, _)| *id)
            .unwrap();
        assert_eq!(victim, worst);
        assert_ne!(victim, pop.best().unwrap().id());
    }

    #[test]
    fn insert_conserves_size_and_leaves_child_unevaluated() {
        let mut pop = evaluated_pop(6, 7);
        let n = pop.len();
        let report = steady_state_insert(&mut pop, 3, 0).unwrap();
        assert_eq!(pop.len(), n);
        assert!(pop.genome(report.child).unwrap().fitness().is_none());
        assert!(pop.genome(report.evicted).is_none());
        assert_ne!(report.evicted, pop.best().unwrap().id());
    }

    #[test]
    fn insert_needs_two_evaluated_members() {
        let cfg = NeatConfig::builder(2, 1)
            .population_size(4)
            .build()
            .unwrap();
        let mut pop = Population::new(cfg, 11);
        assert!(steady_state_insert(&mut pop, 3, 0).is_none());
        let first = *pop.genomes().keys().next().unwrap();
        pop.set_fitness(first, 1.0).unwrap();
        // One evaluated member: it is the champion, so still no victim.
        assert!(steady_state_insert(&mut pop, 3, 1).is_none());
    }

    #[test]
    fn insert_replays_identically_for_same_event() {
        let mut a = evaluated_pop(8, 21);
        let mut b = evaluated_pop(8, 21);
        let ra = steady_state_insert(&mut a, 3, 5).unwrap();
        let rb = steady_state_insert(&mut b, 3, 5).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(
            a.genome(ra.child).unwrap().content_hash(),
            b.genome(rb.child).unwrap().content_hash()
        );
    }
}
