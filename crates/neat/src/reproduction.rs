//! Generation planning and reproduction (the paper's `GP` and `R` blocks).
//!
//! *Generation planning* is the synchronous bookkeeping step: fitness
//! sharing, spawn counts, parent pools, and parent selection for every
//! child. Its output — a [`GenerationPlan`] — is exactly the data CLAN_DDS
//! ships to agents ("sending spawn count", "sending parent list", "sending
//! parent genomes" in the paper's Figure 4).
//!
//! *Reproduction* ([`make_child`]) turns one [`ChildSpec`] plus its parent
//! genomes into a child, deterministically: the RNG stream is derived from
//! `(master_seed, generation, child_id)`, so any agent reproduces any
//! child identically.

use crate::config::NeatConfig;
use crate::gene::{GenomeId, SpeciesId};
use crate::genome::Genome;
use crate::rng::{op_rng, OpTag};
use crate::species::SpeciesSet;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How one child of the next generation is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChildKind {
    /// Verbatim copy of a top genome (elitism).
    Elite {
        /// The genome being copied.
        source: GenomeId,
    },
    /// Sexual reproduction followed by mutation.
    Crossover {
        /// The fitter parent (ties broken by lower id).
        parent1: GenomeId,
        /// The other parent (may equal `parent1`, as in `neat-python`).
        parent2: GenomeId,
    },
}

/// Specification of one child: which species it belongs to and how to
/// build it. Self-contained given access to the parent genomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChildSpec {
    /// Id the child will carry in the next generation.
    pub child_id: GenomeId,
    /// Species the child is budgeted under.
    pub species: SpeciesId,
    /// Construction recipe.
    pub kind: ChildKind,
}

impl ChildSpec {
    /// Genome ids this child needs as inputs.
    pub fn parent_ids(&self) -> Vec<GenomeId> {
        match self.kind {
            ChildKind::Elite { source } => vec![source],
            ChildKind::Crossover { parent1, parent2 } => {
                if parent1 == parent2 {
                    vec![parent1]
                } else {
                    vec![parent1, parent2]
                }
            }
        }
    }
}

/// Per-species slice of the plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeciesPlan {
    /// The species this plan covers.
    pub species: SpeciesId,
    /// Number of children budgeted (fitness sharing outcome).
    pub spawn: usize,
    /// Parent pool: the top `survival_threshold` fraction of members,
    /// fitness-descending.
    pub parent_pool: Vec<GenomeId>,
}

/// The full synchronous plan for building the next generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationPlan {
    /// Generation being planned (children belong to `generation + 1`).
    pub generation: u64,
    /// Per-species budgets and parent pools.
    pub species_plans: Vec<SpeciesPlan>,
    /// Every child to create, in deterministic order.
    pub children: Vec<ChildSpec>,
}

impl GenerationPlan {
    /// Unique set of parent genome ids referenced by any child.
    ///
    /// This is what CLAN_DDS must transfer to agents ("sending parent
    /// genomes"), since the chosen parents are not necessarily resident on
    /// the agent that builds the child.
    pub fn parent_ids(&self) -> BTreeSet<GenomeId> {
        self.children.iter().flat_map(|c| c.parent_ids()).collect()
    }

    /// `(species, spawn)` pairs — the paper's "sending spawn count" payload.
    pub fn spawn_counts(&self) -> Vec<(SpeciesId, usize)> {
        self.species_plans
            .iter()
            .map(|sp| (sp.species, sp.spawn))
            .collect()
    }

    /// Total children (equals the configured population size).
    pub fn num_children(&self) -> usize {
        self.children.len()
    }
}

/// Computes fitness sharing, spawn counts, parent pools, and per-child
/// parent selection. Deterministic given identical inputs.
///
/// `next_genome_id` supplies fresh child ids and is advanced.
///
/// # Panics
///
/// Panics if any member genome lacks fitness (callers evaluate first) or
/// if the species set is empty.
pub fn compute_plan(
    species: &mut SpeciesSet,
    genomes: &BTreeMap<GenomeId, Genome>,
    cfg: &NeatConfig,
    generation: u64,
    master_seed: u64,
    next_genome_id: &mut u64,
) -> GenerationPlan {
    assert!(!species.is_empty(), "cannot plan with zero species");
    let fitness_of = |id: GenomeId| -> f64 {
        genomes[&id]
            .fitness()
            .expect("generation planning requires evaluated genomes")
    };

    // --- Fitness sharing (adjusted fitness), neat-python style. ---------
    let all_fits: Vec<f64> = species
        .species()
        .values()
        .flat_map(|s| s.members().iter().map(|&m| fitness_of(m)))
        .collect();
    let min_f = all_fits.iter().copied().fold(f64::INFINITY, f64::min);
    let max_f = all_fits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (max_f - min_f).max(1.0);

    let sids: Vec<SpeciesId> = species.species().keys().copied().collect();
    let mut adjusted: Vec<(SpeciesId, f64)> = Vec::with_capacity(sids.len());
    for &sid in &sids {
        let s = &species.species()[&sid];
        let mean =
            s.members().iter().map(|&m| fitness_of(m)).sum::<f64>() / s.members().len() as f64;
        let af = (mean - min_f) / range;
        adjusted.push((sid, af));
    }
    for &(sid, af) in &adjusted {
        species
            .species_mut()
            .get_mut(&sid)
            .expect("species exists")
            .set_adjusted_fitness(af);
    }

    // --- Spawn counts: proportional shares normalized to exactly the ----
    // configured population size (largest-remainder), with a
    // min_species_size floor where the budget allows.
    let pop = cfg.population_size;
    let spawn = allocate_spawn(&adjusted, pop, cfg.min_species_size);

    // --- Parent pools and child specs. ----------------------------------
    let mut species_plans = Vec::with_capacity(sids.len());
    let mut children = Vec::with_capacity(pop);
    for (&sid, &n_spawn) in sids.iter().zip(spawn.iter()) {
        let s = &species.species()[&sid];
        let mut ranked: Vec<GenomeId> = s.members().to_vec();
        ranked.sort_by(|&a, &b| {
            fitness_of(b)
                .partial_cmp(&fitness_of(a))
                .expect("finite fitness")
                .then(a.cmp(&b))
        });
        let cutoff = ((cfg.survival_threshold * ranked.len() as f64).ceil() as usize)
            .max(2)
            .min(ranked.len());
        let pool: Vec<GenomeId> = ranked[..cutoff].to_vec();

        let n_elites = cfg.elitism.min(n_spawn).min(ranked.len());
        for elite in ranked.iter().take(n_elites) {
            let child_id = GenomeId(*next_genome_id);
            *next_genome_id += 1;
            children.push(ChildSpec {
                child_id,
                species: sid,
                kind: ChildKind::Elite { source: *elite },
            });
        }
        for _ in n_elites..n_spawn {
            let child_id = GenomeId(*next_genome_id);
            *next_genome_id += 1;
            let mut rng = op_rng(master_seed, generation, child_id.0, OpTag::ParentSelect);
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            // Fitter parent first; ties broken by id for determinism.
            let (parent1, parent2) = order_parents(a, b, &fitness_of);
            children.push(ChildSpec {
                child_id,
                species: sid,
                kind: ChildKind::Crossover { parent1, parent2 },
            });
        }
        species_plans.push(SpeciesPlan {
            species: sid,
            spawn: n_spawn,
            parent_pool: pool,
        });
    }

    GenerationPlan {
        generation,
        species_plans,
        children,
    }
}

/// Orders two parent ids so the fitter (ties: lower id) comes first.
fn order_parents(
    a: GenomeId,
    b: GenomeId,
    fitness_of: &impl Fn(GenomeId) -> f64,
) -> (GenomeId, GenomeId) {
    let (fa, fb) = (fitness_of(a), fitness_of(b));
    if fb > fa || (fb == fa && b < a) {
        (b, a)
    } else {
        (a, b)
    }
}

/// Largest-remainder allocation of `pop` spawn slots proportional to
/// adjusted fitness, honoring `min_size` per species where possible.
///
/// Always sums to exactly `pop` (the exactness — a small deviation from
/// `neat-python`, whose population size drifts — keeps distributed
/// partitioning clean).
fn allocate_spawn(adjusted: &[(SpeciesId, f64)], pop: usize, min_size: usize) -> Vec<usize> {
    let n = adjusted.len();
    debug_assert!(n > 0);
    let af_sum: f64 = adjusted.iter().map(|&(_, af)| af).sum();
    let raw: Vec<f64> = if af_sum > 0.0 {
        adjusted
            .iter()
            .map(|&(_, af)| af / af_sum * pop as f64)
            .collect()
    } else {
        vec![pop as f64 / n as f64; n]
    };

    // Largest remainder to hit pop exactly.
    let mut alloc: Vec<usize> = raw.iter().map(|&r| r.floor() as usize).collect();
    let mut rest: i64 = pop as i64 - alloc.iter().sum::<usize>() as i64;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        let ri = raw[i] - raw[i].floor();
        let rj = raw[j] - raw[j].floor();
        rj.partial_cmp(&ri)
            .expect("finite remainders")
            .then(adjusted[i].0.cmp(&adjusted[j].0))
    });
    let mut k = 0;
    while rest > 0 {
        alloc[order[k % n]] += 1;
        rest -= 1;
        k += 1;
    }

    // Enforce the floor by stealing from the largest allocations, if the
    // budget allows (n * min_size <= pop).
    if n * min_size <= pop {
        while let Some(under) = alloc.iter().position(|&a| a < min_size) {
            let (over, _) = alloc
                .iter()
                .enumerate()
                .max_by_key(|&(i, &a)| (a, std::cmp::Reverse(adjusted[i].0)))
                .expect("non-empty");
            debug_assert!(alloc[over] > min_size);
            alloc[over] -= 1;
            alloc[under] += 1;
        }
    }
    debug_assert_eq!(alloc.iter().sum::<usize>(), pop);
    alloc
}

/// Builds one child from its spec and parent genomes.
///
/// Deterministic and location-independent: RNG streams derive from
/// `(master_seed, generation, child_id)`, so the same child built on any
/// agent (or the center) is bit-identical. Returns the child genome;
/// callers charge `child.num_genes()` to reproduction cost.
///
/// # Panics
///
/// Panics if `parents` does not match `spec.kind`'s requirements
/// (elite needs the source as `parents.0`).
pub fn make_child(
    cfg: &NeatConfig,
    spec: &ChildSpec,
    parents: (&Genome, Option<&Genome>),
    master_seed: u64,
    generation: u64,
) -> Genome {
    match spec.kind {
        ChildKind::Elite { source } => {
            let (p, _) = parents;
            assert_eq!(p.id(), source, "elite spec requires its source genome");
            let mut child = p.clone();
            child.set_id(spec.child_id);
            child.clear_fitness();
            child
        }
        ChildKind::Crossover { parent1, parent2 } => {
            let (p1, p2) = parents;
            assert_eq!(p1.id(), parent1, "crossover spec requires parent1 first");
            let p2 = if parent1 == parent2 {
                p1
            } else {
                let p2 = p2.expect("distinct parents require second genome");
                assert_eq!(p2.id(), parent2, "crossover spec parent2 mismatch");
                p2
            };
            let mut xo_rng = op_rng(master_seed, generation, spec.child_id.0, OpTag::Crossover);
            let mut child = Genome::crossover(p1, p2, spec.child_id, &mut xo_rng);
            let mut mut_rng = op_rng(master_seed, generation, spec.child_id.0, OpTag::Mutation);
            child.mutate(cfg, &mut mut_rng);
            child
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CostCounters;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(pop: usize) -> (NeatConfig, BTreeMap<GenomeId, Genome>, SpeciesSet) {
        let cfg = NeatConfig::builder(3, 1)
            .population_size(pop)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut genomes: BTreeMap<GenomeId, Genome> = (0..pop)
            .map(|i| {
                let id = GenomeId(i as u64);
                let mut g = Genome::new_initial(&cfg, id, &mut rng);
                g.set_fitness(i as f64);
                (id, g)
            })
            .collect();
        let ids: Vec<GenomeId> = genomes.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                let g = genomes.get_mut(id).unwrap();
                let mut r = StdRng::seed_from_u64(77 + i as u64);
                for _ in 0..20 {
                    g.mutate(&cfg, &mut r);
                }
                g.set_fitness(i as f64);
            }
        }
        let mut set = SpeciesSet::new();
        let mut counters = CostCounters::new();
        set.speciate(&genomes, &cfg, 0, &mut counters);
        (cfg, genomes, set)
    }

    #[test]
    fn plan_budgets_exactly_population_size() {
        let (cfg, genomes, mut set) = setup(30);
        let mut next_id = 1000;
        let plan = compute_plan(&mut set, &genomes, &cfg, 0, 7, &mut next_id);
        assert_eq!(plan.num_children(), 30);
        assert_eq!(next_id, 1030);
        let total: usize = plan.spawn_counts().iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn plan_child_ids_unique_and_sequential() {
        let (cfg, genomes, mut set) = setup(20);
        let mut next_id = 500;
        let plan = compute_plan(&mut set, &genomes, &cfg, 0, 7, &mut next_id);
        let ids: BTreeSet<u64> = plan.children.iter().map(|c| c.child_id.0).collect();
        assert_eq!(ids.len(), 20);
        assert_eq!(*ids.iter().next().unwrap(), 500);
        assert_eq!(*ids.iter().last().unwrap(), 519);
    }

    #[test]
    fn plan_is_deterministic() {
        let (cfg, genomes, set) = setup(25);
        let mut set_a = set.clone();
        let mut set_b = set;
        let mut id_a = 0;
        let mut id_b = 0;
        let a = compute_plan(&mut set_a, &genomes, &cfg, 3, 99, &mut id_a);
        let b = compute_plan(&mut set_b, &genomes, &cfg, 3, 99, &mut id_b);
        assert_eq!(a, b);
    }

    #[test]
    fn elites_come_from_top_of_species() {
        let (cfg, genomes, mut set) = setup(30);
        let mut next_id = 0;
        let plan = compute_plan(&mut set, &genomes, &cfg, 0, 7, &mut next_id);
        for sp in &plan.species_plans {
            let elite_sources: Vec<GenomeId> = plan
                .children
                .iter()
                .filter(|c| c.species == sp.species)
                .filter_map(|c| match c.kind {
                    ChildKind::Elite { source } => Some(source),
                    _ => None,
                })
                .collect();
            for e in &elite_sources {
                // Elites must be in the parent pool's top ranks.
                assert!(
                    sp.parent_pool.contains(e) || elite_sources.len() <= cfg.elitism,
                    "elite {e} should be among the fittest"
                );
            }
        }
    }

    #[test]
    fn crossover_parents_ordered_fitter_first() {
        let (cfg, genomes, mut set) = setup(40);
        let mut next_id = 0;
        let plan = compute_plan(&mut set, &genomes, &cfg, 0, 7, &mut next_id);
        for c in &plan.children {
            if let ChildKind::Crossover { parent1, parent2 } = c.kind {
                let f1 = genomes[&parent1].fitness().unwrap();
                let f2 = genomes[&parent2].fitness().unwrap();
                assert!(
                    f1 > f2 || (f1 == f2 && parent1 <= parent2),
                    "parent order violated: {parent1}({f1}) vs {parent2}({f2})"
                );
            }
        }
    }

    #[test]
    fn parent_pool_respects_survival_threshold() {
        let (cfg, genomes, mut set) = setup(40);
        let mut next_id = 0;
        let plan = compute_plan(&mut set, &genomes, &cfg, 0, 7, &mut next_id);
        for sp in &plan.species_plans {
            let mems = set
                .species()
                .get(&sp.species)
                .map(|s| s.members().len())
                .unwrap_or(0);
            let expected = ((cfg.survival_threshold * mems as f64).ceil() as usize)
                .max(2)
                .min(mems);
            assert_eq!(sp.parent_pool.len(), expected);
        }
    }

    #[test]
    fn make_child_elite_is_verbatim_copy() {
        let (cfg, genomes, _) = setup(10);
        let source = GenomeId(3);
        let spec = ChildSpec {
            child_id: GenomeId(100),
            species: SpeciesId(0),
            kind: ChildKind::Elite { source },
        };
        let child = make_child(&cfg, &spec, (&genomes[&source], None), 7, 0);
        assert_eq!(child.id(), GenomeId(100));
        assert_eq!(child.fitness(), None);
        assert_eq!(child.nodes(), genomes[&source].nodes());
        assert_eq!(child.conns(), genomes[&source].conns());
    }

    #[test]
    fn make_child_location_independent() {
        let (cfg, genomes, _) = setup(10);
        let spec = ChildSpec {
            child_id: GenomeId(200),
            species: SpeciesId(0),
            kind: ChildKind::Crossover {
                parent1: GenomeId(9),
                parent2: GenomeId(8),
            },
        };
        let a = make_child(
            &cfg,
            &spec,
            (&genomes[&GenomeId(9)], Some(&genomes[&GenomeId(8)])),
            7,
            0,
        );
        let b = make_child(
            &cfg,
            &spec,
            (&genomes[&GenomeId(9)], Some(&genomes[&GenomeId(8)])),
            7,
            0,
        );
        assert_eq!(a, b, "same spec + seed must be bit-identical anywhere");
    }

    #[test]
    fn make_child_self_crossover_allowed() {
        let (cfg, genomes, _) = setup(10);
        let spec = ChildSpec {
            child_id: GenomeId(300),
            species: SpeciesId(0),
            kind: ChildKind::Crossover {
                parent1: GenomeId(5),
                parent2: GenomeId(5),
            },
        };
        let child = make_child(&cfg, &spec, (&genomes[&GenomeId(5)], None), 7, 0);
        child.check_invariants(&cfg).unwrap();
    }

    #[test]
    fn allocate_spawn_sums_to_population() {
        let adj = vec![
            (SpeciesId(0), 0.9),
            (SpeciesId(1), 0.1),
            (SpeciesId(2), 0.0),
        ];
        let alloc = allocate_spawn(&adj, 150, 2);
        assert_eq!(alloc.iter().sum::<usize>(), 150);
        assert!(alloc.iter().all(|&a| a >= 2), "{alloc:?}");
        assert!(alloc[0] > alloc[1], "{alloc:?}");
    }

    #[test]
    fn allocate_spawn_zero_fitness_equal_shares() {
        let adj = vec![(SpeciesId(0), 0.0), (SpeciesId(1), 0.0)];
        let alloc = allocate_spawn(&adj, 10, 2);
        assert_eq!(alloc, vec![5, 5]);
    }

    #[test]
    fn allocate_spawn_more_species_than_budget() {
        let adj: Vec<(SpeciesId, f64)> = (0..10)
            .map(|i| (SpeciesId(i), 1.0 / (i + 1) as f64))
            .collect();
        let alloc = allocate_spawn(&adj, 5, 2);
        assert_eq!(alloc.iter().sum::<usize>(), 5);
    }

    #[test]
    fn spec_parent_ids_dedup_self_cross() {
        let spec = ChildSpec {
            child_id: GenomeId(1),
            species: SpeciesId(0),
            kind: ChildKind::Crossover {
                parent1: GenomeId(4),
                parent2: GenomeId(4),
            },
        };
        assert_eq!(spec.parent_ids(), vec![GenomeId(4)]);
    }
}
