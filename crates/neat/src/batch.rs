//! Batched structure-of-arrays activation: evaluate same-shape networks
//! in lockstep.
//!
//! A NEAT population is structurally clumpy — elites, their offspring,
//! and most weight-mutated children share the *exact* compiled topology
//! (same node order, same incoming slot lists) and differ only in
//! weights, biases, and responses. [`ShapeKey`] captures that compiled
//! layout; networks with equal keys can be packed into a
//! [`BatchedNetwork`], which stores each per-genome parameter as a
//! lane-contiguous array (`[edge][lane]`, `[node][lane]`) and evaluates
//! all lanes per node in one pass. The inner loop becomes dense strided
//! array arithmetic over shared slot indices instead of per-genome
//! pointer-chasing node walks — the GeneSys batching argument applied to
//! the CLAN evaluator.
//!
//! # Bit-identity contract
//!
//! Every lane must produce *bit-identical* results to
//! [`FeedForwardNetwork::activate_into`] on the same genome:
//!
//! - `Sum` aggregation accumulates weighted inputs in compiled edge
//!   order starting from `0.0`, exactly matching the scalar tier's
//!   `iter().map(..).sum()` fold.
//! - Non-`Sum` aggregations stage the weighted inputs per lane in edge
//!   order and call the same [`Aggregation::apply`].
//! - Per-lane argmax replicates the scalar tier's last-max-wins `is_ge`
//!   tie-break.
//!
//! Shapes are grouped by exact structural equality (no hashing
//! shortcut), so a lane can never be loaded into a mismatched plan.

use crate::activation::Aggregation;
use crate::network::FeedForwardNetwork;

/// Exact structural signature of a compiled network.
///
/// Two networks with equal keys have identical evaluation plans — same
/// input/output arity, same node order, same activation/aggregation per
/// node, and same incoming value-slot sequence per node — and therefore
/// differ only in weights, biases, and responses. Equality is exact
/// (token-sequence comparison), never a hash, so grouping by `ShapeKey`
/// can never alias two distinct topologies.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeKey(Vec<u64>);

impl ShapeKey {
    /// Computes the signature of a compiled network.
    pub fn of(net: &FeedForwardNetwork) -> ShapeKey {
        let nodes = net.eval_nodes();
        let mut tokens = Vec::with_capacity(
            // clan-lint: allow(D3, reason="integer capacity arithmetic, not FP accumulation")
            4 + nodes.iter().map(|n| 3 + n.incoming.len()).sum::<usize>()
                + net.output_slot_list().len(),
        );
        tokens.push(net.num_inputs() as u64);
        tokens.push(net.num_outputs() as u64);
        tokens.push(nodes.len() as u64);
        for node in nodes {
            tokens.push(node.activation as u64);
            tokens.push(node.aggregation as u64);
            tokens.push(node.incoming.len() as u64);
            tokens.extend(node.incoming.iter().map(|&(slot, _)| slot as u64));
        }
        tokens.extend(net.output_slot_list().iter().map(|&s| s as u64));
        ShapeKey(tokens)
    }
}

/// Per-node metadata shared by every lane of a [`BatchedNetwork`].
#[derive(Debug, Clone)]
struct BatchNode {
    activation: crate::activation::Activation,
    aggregation: Aggregation,
}

/// A bank of same-shape networks evaluated in lockstep.
///
/// Built from a template network's compiled plan with a fixed number of
/// `lanes`; individual genomes' parameters are loaded per lane with
/// [`load_lane`](Self::load_lane) and all lanes advance together on each
/// [`activate`](Self::activate). All buffers are lane-contiguous
/// (`values[slot * lanes + lane]`) and allocated once at construction —
/// the activation loop itself is allocation-free.
#[derive(Debug, Clone)]
pub struct BatchedNetwork {
    shape: ShapeKey,
    num_inputs: usize,
    num_outputs: usize,
    lanes: usize,
    /// Lanes `0..live` are computed by [`activate`](Self::activate);
    /// lanes `live..lanes` are parked (drain-phase compaction).
    live: usize,
    nodes: Vec<BatchNode>,
    /// CSR slot indices of incoming edges, concatenated over nodes.
    slots: Vec<usize>,
    /// CSR offsets into `slots`/`weights` rows: `edge_off[i]..edge_off[i+1]`.
    edge_off: Vec<usize>,
    /// Edge weights, `[edge][lane]`.
    weights: Vec<f64>,
    /// Node biases, `[node][lane]`.
    bias: Vec<f64>,
    /// Node responses, `[node][lane]`.
    response: Vec<f64>,
    output_slots: Vec<usize>,
    genes_per_activation: u64,
    /// Value slots, `[slot][lane]`: inputs first, then nodes in
    /// topological order. Input rows are written by
    /// [`set_input`](Self::set_input) and persist across activations.
    values: Vec<f64>,
    /// Per-lane staging for non-`Sum` aggregations.
    staged: Vec<f64>,
    /// Per-lane accumulator row for `Sum` nodes (edge-outer kernel).
    acc: Vec<f64>,
    /// Last activation's outputs, `[output][lane]`.
    outputs: Vec<f64>,
}

impl BatchedNetwork {
    /// Builds an empty bank shaped like `template` with `lanes` lanes.
    ///
    /// Lane parameters are zero until loaded; callers must
    /// [`load_lane`](Self::load_lane) before reading a lane's outputs.
    pub fn from_template(template: &FeedForwardNetwork, lanes: usize) -> BatchedNetwork {
        let lanes = lanes.max(1);
        let tnodes = template.eval_nodes();
        let mut nodes = Vec::with_capacity(tnodes.len());
        let mut slots = Vec::new();
        let mut edge_off = Vec::with_capacity(tnodes.len() + 1);
        edge_off.push(0);
        let mut max_deg = 0;
        for node in tnodes {
            nodes.push(BatchNode {
                activation: node.activation,
                aggregation: node.aggregation,
            });
            slots.extend(node.incoming.iter().map(|&(slot, _)| slot));
            edge_off.push(slots.len());
            max_deg = max_deg.max(node.incoming.len());
        }
        let num_slots = template.num_inputs() + tnodes.len();
        BatchedNetwork {
            shape: ShapeKey::of(template),
            num_inputs: template.num_inputs(),
            num_outputs: template.num_outputs(),
            lanes,
            live: lanes,
            nodes,
            weights: vec![0.0; slots.len() * lanes],
            slots,
            edge_off,
            bias: vec![0.0; tnodes.len() * lanes],
            response: vec![0.0; tnodes.len() * lanes],
            output_slots: template.output_slot_list().to_vec(),
            genes_per_activation: template.genes_per_activation(),
            values: vec![0.0; num_slots * lanes],
            staged: Vec::with_capacity(max_deg),
            acc: vec![0.0; lanes],
            outputs: vec![0.0; template.num_outputs() * lanes],
        }
    }

    /// Number of lanes in the bank.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of lanes [`activate`](Self::activate) currently computes.
    pub fn live_lanes(&self) -> usize {
        self.live
    }

    /// Restricts [`activate`](Self::activate) to lanes `0..n`.
    ///
    /// Parked lanes keep their parameters and values but cost nothing
    /// per activation. Callers compact active work into the low lanes
    /// with [`swap_lanes`](Self::swap_lanes) before shrinking, and may
    /// grow `n` back up to [`lanes`](Self::lanes) at any time.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the bank's lane count.
    pub fn set_live_lanes(&mut self, n: usize) {
        assert!(n <= self.lanes, "live lanes {n} out of {}", self.lanes);
        self.live = n;
    }

    /// Swaps every per-lane value (parameters, input/node values, and
    /// last outputs) between two lanes.
    ///
    /// Lane arithmetic only ever reads a lane's own entries, so a swap
    /// relocates a lane bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if either lane is out of range.
    pub fn swap_lanes(&mut self, a: usize, b: usize) {
        assert!(a < self.lanes && b < self.lanes, "lane out of range");
        if a == b {
            return;
        }
        let lanes = self.lanes;
        let rows = |buf: &mut [f64], width: usize| {
            for row in 0..width {
                buf.swap(row * lanes + a, row * lanes + b);
            }
        };
        rows(&mut self.weights, self.slots.len());
        rows(&mut self.bias, self.nodes.len());
        rows(&mut self.response, self.nodes.len());
        rows(&mut self.values, self.num_inputs + self.nodes.len());
        rows(&mut self.outputs, self.num_outputs);
    }

    /// Number of expected inputs per lane.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs per lane.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Genes touched per activation *per lane* — identical for every
    /// network of this shape.
    pub fn genes_per_activation(&self) -> u64 {
        self.genes_per_activation
    }

    /// The structural signature this bank was built for.
    pub fn shape(&self) -> &ShapeKey {
        &self.shape
    }

    /// Loads `net`'s parameters (weights, biases, responses) into `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `net`'s shape differs from the
    /// bank's template shape.
    pub fn load_lane(&mut self, lane: usize, net: &FeedForwardNetwork) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(
            ShapeKey::of(net),
            self.shape,
            "network shape does not match the batch template"
        );
        let lanes = self.lanes;
        for (i, node) in net.eval_nodes().iter().enumerate() {
            self.bias[i * lanes + lane] = node.bias;
            self.response[i * lanes + lane] = node.response;
            let e0 = self.edge_off[i];
            for (e, &(_, w)) in node.incoming.iter().enumerate() {
                self.weights[(e0 + e) * lanes + lane] = w;
            }
        }
    }

    /// Writes one lane's observation into the input slots.
    ///
    /// Input rows persist across [`activate`](Self::activate) calls, so
    /// lanes whose episodes have finished simply keep computing on their
    /// last observation until reloaded.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `obs.len()` differs from
    /// [`num_inputs`](Self::num_inputs).
    pub fn set_input(&mut self, lane: usize, obs: &[f64]) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(
            obs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            obs.len()
        );
        for (slot, &x) in obs.iter().enumerate() {
            self.values[slot * self.lanes + lane] = x;
        }
    }

    /// Runs one forward pass for every **live** lane (all lanes unless
    /// shrunk via [`set_live_lanes`](Self::set_live_lanes)).
    ///
    /// Each lane's arithmetic matches
    /// [`FeedForwardNetwork::activate_into`] bit for bit: `Sum` nodes
    /// accumulate weighted inputs in edge order from `0.0` (the
    /// edge-outer/lane-inner kernel touches contiguous lane rows per
    /// edge but keeps each lane's addition sequence identical); other
    /// aggregations stage per-lane weighted inputs in edge order and
    /// apply the shared [`Aggregation`].
    pub fn activate(&mut self) {
        let BatchedNetwork {
            num_inputs,
            lanes,
            live,
            nodes,
            slots,
            edge_off,
            weights,
            bias,
            response,
            output_slots,
            values,
            staged,
            acc,
            outputs,
            ..
        } = self;
        let (ni, lanes, live) = (*num_inputs, *lanes, *live);
        for (i, node) in nodes.iter().enumerate() {
            let (e0, e1) = (edge_off[i], edge_off[i + 1]);
            let out_base = (ni + i) * lanes;
            match node.aggregation {
                Aggregation::Sum => {
                    let acc = &mut acc[..live];
                    acc.fill(0.0);
                    for e in e0..e1 {
                        // Slice rows so the lane loop is bounds-check
                        // free and vectorizes.
                        let vrow = &values[slots[e] * lanes..][..live];
                        let wrow = &weights[e * lanes..][..live];
                        for ((a, v), w) in acc.iter_mut().zip(vrow).zip(wrow) {
                            *a += v * w;
                        }
                    }
                    let brow = &bias[i * lanes..][..live];
                    let rrow = &response[i * lanes..][..live];
                    let orow = &mut values[out_base..][..live];
                    for (((o, &a), &b), &r) in orow.iter_mut().zip(acc.iter()).zip(brow).zip(rrow) {
                        *o = node.activation.apply(b + r * a);
                    }
                }
                agg => {
                    for l in 0..live {
                        staged.clear();
                        staged.extend(
                            (e0..e1).map(|e| values[slots[e] * lanes + l] * weights[e * lanes + l]),
                        );
                        let a = agg.apply(staged);
                        values[out_base + l] = node
                            .activation
                            .apply(bias[i * lanes + l] + response[i * lanes + l] * a);
                    }
                }
            }
        }
        for (j, &slot) in output_slots.iter().enumerate() {
            let src = slot * lanes;
            let dst = j * lanes;
            outputs[dst..dst + live].copy_from_slice(&values[src..src + live]);
        }
    }

    /// One output value of the last [`activate`](Self::activate) call.
    pub fn output(&self, lane: usize, output: usize) -> f64 {
        self.outputs[output * self.lanes + lane]
    }

    /// Copies one lane's outputs of the last activation into `out`.
    pub fn copy_outputs(&self, lane: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.num_outputs).map(|j| self.outputs[j * self.lanes + lane]));
    }

    /// Argmax over one lane's outputs — the discrete-action policy step.
    ///
    /// Tie-breaking matches [`FeedForwardNetwork::act_argmax_with`]
    /// exactly: among exact ties the *last* maximal output wins.
    ///
    /// # Panics
    ///
    /// Panics if outputs are incomparable (NaN).
    pub fn argmax(&self, lane: usize) -> usize {
        let mut best = 0;
        let mut best_v = self.outputs[lane];
        for j in 1..self.num_outputs {
            let v = self.outputs[j * self.lanes + lane];
            if v.partial_cmp(&best_v).expect("finite outputs").is_ge() {
                best = j;
                best_v = v;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeatConfig;
    use crate::gene::GenomeId;
    use crate::genome::Genome;
    use crate::network::Scratch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(i: usize, o: usize) -> NeatConfig {
        NeatConfig::builder(i, o).build().unwrap()
    }

    #[test]
    fn shape_key_groups_initial_genomes_and_splits_mutants() {
        let cfg = cfg(3, 2);
        let nets: Vec<_> = (0..4)
            .map(|s| {
                let g = Genome::new_initial(&cfg, GenomeId(s), &mut StdRng::seed_from_u64(s));
                FeedForwardNetwork::compile(&g, &cfg)
            })
            .collect();
        let key = ShapeKey::of(&nets[0]);
        for net in &nets[1..] {
            assert_eq!(ShapeKey::of(net), key, "full-init genomes share a shape");
        }
        let mut mutant = Genome::new_initial(&cfg, GenomeId(9), &mut StdRng::seed_from_u64(9));
        mutant.mutate_add_node(&cfg, &mut StdRng::seed_from_u64(10));
        let mutant_net = FeedForwardNetwork::compile(&mutant, &cfg);
        assert_ne!(ShapeKey::of(&mutant_net), key, "add-node changes the shape");
    }

    #[test]
    fn batched_lanes_match_scalar_bit_for_bit() {
        // Same-shape genomes with different weights, across many steps:
        // every lane must agree exactly with the scalar scratch tier,
        // including the argmax tie-break.
        let cfg = cfg(5, 3);
        let genomes: Vec<_> = (0..8)
            .map(|s| Genome::new_initial(&cfg, GenomeId(s), &mut StdRng::seed_from_u64(40 + s)))
            .collect();
        let nets: Vec<_> = genomes
            .iter()
            .map(|g| FeedForwardNetwork::compile(g, &cfg))
            .collect();
        let mut bank = BatchedNetwork::from_template(&nets[0], nets.len());
        for (lane, net) in nets.iter().enumerate() {
            bank.load_lane(lane, net);
        }
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        for step in 0..25 {
            let x = step as f64 / 9.0;
            let inputs = [x, -x, 0.5 * x, 1.0 - x, x * x - 2.0];
            for lane in 0..nets.len() {
                bank.set_input(lane, &inputs);
            }
            bank.activate();
            for (lane, net) in nets.iter().enumerate() {
                let scalar = net.activate_into(&inputs, &mut scratch);
                bank.copy_outputs(lane, &mut out);
                assert_eq!(scalar, out.as_slice(), "lane {lane} step {step}");
                assert_eq!(
                    net.act_argmax_with(&inputs, &mut scratch),
                    bank.argmax(lane),
                    "argmax lane {lane} step {step}"
                );
            }
        }
    }

    #[test]
    fn heavily_mutated_topologies_batch_correctly() {
        // Load the same mutated genome (which exercises hidden nodes and,
        // with raised mutate rates, non-Sum aggregations and varied
        // activations) into several lanes alongside differently-weighted
        // clones; all lanes must match their scalar network exactly.
        let cfg = NeatConfig::builder(4, 2)
            .activation_mutate_rate(0.4)
            .aggregation_mutate_rate(0.4)
            .build()
            .unwrap();
        for seed in 0..6 {
            let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed));
            let mut r = StdRng::seed_from_u64(100 + seed);
            for _ in 0..50 {
                g.mutate(&cfg, &mut r);
            }
            // A weight-perturbed clone keeps the shape but not the values.
            let mut clone = g.clone();
            clone.mutate_attributes(&cfg, &mut StdRng::seed_from_u64(7));
            let nets = [
                FeedForwardNetwork::compile(&g, &cfg),
                FeedForwardNetwork::compile(&clone, &cfg),
            ];
            if ShapeKey::of(&nets[0]) != ShapeKey::of(&nets[1]) {
                continue; // weight mutation may toggle nothing structural, but skip if it did
            }
            let mut bank = BatchedNetwork::from_template(&nets[0], 2);
            bank.load_lane(0, &nets[0]);
            bank.load_lane(1, &nets[1]);
            let mut scratch = Scratch::new();
            let mut out = Vec::new();
            for step in 0..15 {
                let x = step as f64 / 4.0 - 1.5;
                let inputs = [x, -x, x * 0.25, 1.0];
                bank.set_input(0, &inputs);
                bank.set_input(1, &inputs);
                bank.activate();
                for (lane, net) in nets.iter().enumerate() {
                    let scalar = net.activate_into(&inputs, &mut scratch);
                    bank.copy_outputs(lane, &mut out);
                    assert_eq!(
                        scalar,
                        out.as_slice(),
                        "seed {seed} lane {lane} step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn stale_lanes_do_not_disturb_live_lanes() {
        // Lane-streaming leaves finished lanes computing on stale inputs;
        // the live lane's results must be unaffected by what the other
        // lanes hold.
        let cfg = cfg(2, 2);
        let a = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(1));
        let b = Genome::new_initial(&cfg, GenomeId(1), &mut StdRng::seed_from_u64(2));
        let net_a = FeedForwardNetwork::compile(&a, &cfg);
        let net_b = FeedForwardNetwork::compile(&b, &cfg);
        let mut bank = BatchedNetwork::from_template(&net_a, 2);
        bank.load_lane(0, &net_a);
        bank.load_lane(1, &net_b);
        bank.set_input(0, &[0.3, -0.7]);
        bank.set_input(1, &[9.0, 9.0]);
        bank.activate();
        let mut scratch = Scratch::new();
        let live = net_a.activate_into(&[0.3, -0.7], &mut scratch).to_vec();
        let mut out = Vec::new();
        bank.copy_outputs(0, &mut out);
        assert_eq!(live.as_slice(), out.as_slice());
        // Advance only lane 1's input; lane 0 stays on its stale obs and
        // keeps producing the identical value.
        bank.set_input(1, &[-1.0, 2.0]);
        bank.activate();
        bank.copy_outputs(0, &mut out);
        assert_eq!(live.as_slice(), out.as_slice());
    }

    #[test]
    fn reloading_a_lane_replaces_its_parameters() {
        let cfg = cfg(3, 1);
        let a = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(5));
        let b = Genome::new_initial(&cfg, GenomeId(1), &mut StdRng::seed_from_u64(6));
        let net_a = FeedForwardNetwork::compile(&a, &cfg);
        let net_b = FeedForwardNetwork::compile(&b, &cfg);
        let mut bank = BatchedNetwork::from_template(&net_a, 1);
        let mut scratch = Scratch::new();
        let inputs = [0.2, 0.4, -0.6];
        bank.load_lane(0, &net_a);
        bank.set_input(0, &inputs);
        bank.activate();
        assert_eq!(
            bank.output(0, 0),
            net_a.activate_into(&inputs, &mut scratch)[0]
        );
        bank.load_lane(0, &net_b);
        bank.activate();
        assert_eq!(
            bank.output(0, 0),
            net_b.activate_into(&inputs, &mut scratch)[0]
        );
    }

    #[test]
    fn swapping_lanes_and_shrinking_live_keeps_results_bit_identical() {
        // Drain-phase compaction: move the surviving lane to slot 0,
        // shrink the live window, and keep getting the exact scalar
        // results while parked lanes cost nothing and hold stale data.
        let cfg = cfg(3, 2);
        let nets: Vec<_> = (0..4)
            .map(|s| {
                let g = Genome::new_initial(&cfg, GenomeId(s), &mut StdRng::seed_from_u64(20 + s));
                FeedForwardNetwork::compile(&g, &cfg)
            })
            .collect();
        let mut bank = BatchedNetwork::from_template(&nets[0], 4);
        for (lane, net) in nets.iter().enumerate() {
            bank.load_lane(lane, net);
        }
        let inputs = [0.4, -0.9, 1.3];
        for lane in 0..4 {
            bank.set_input(lane, &inputs);
        }
        bank.activate();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        // Pretend lanes 0-2 finished: lane 3 survives, compacted to 0.
        bank.swap_lanes(0, 3);
        bank.set_live_lanes(1);
        assert_eq!(bank.live_lanes(), 1);
        let next = [-0.2, 0.8, 0.1];
        bank.set_input(0, &next);
        bank.activate();
        bank.copy_outputs(0, &mut out);
        assert_eq!(
            nets[3].activate_into(&next, &mut scratch),
            out.as_slice(),
            "compacted lane must track its network exactly"
        );
        assert_eq!(nets[3].act_argmax_with(&next, &mut scratch), bank.argmax(0));
        // Growing the window back re-exposes the parked lanes untouched.
        bank.set_live_lanes(4);
        bank.activate();
        bank.copy_outputs(3, &mut out);
        assert_eq!(
            nets[0].activate_into(&inputs, &mut scratch),
            out.as_slice(),
            "parked lane kept its swapped-in parameters and inputs"
        );
    }

    #[test]
    #[should_panic(expected = "does not match the batch template")]
    fn shape_mismatch_panics_on_load() {
        let cfg = cfg(2, 1);
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(1));
        let mut m = g.clone();
        m.mutate_add_node(&cfg, &mut StdRng::seed_from_u64(2));
        let net = FeedForwardNetwork::compile(&g, &cfg);
        let mutant = FeedForwardNetwork::compile(&m, &cfg);
        let mut bank = BatchedNetwork::from_template(&net, 2);
        bank.load_lane(0, &mutant);
    }
}
