//! # clan-neat — NeuroEvolution of Augmenting Topologies, from scratch
//!
//! A complete, deterministic implementation of the NEAT algorithm
//! (Stanley & Miikkulainen, 2002) as used by the CLAN paper
//! (Mannan et al., ISPASS 2020). The semantics mirror the `neat-python`
//! library the paper built on: genomes hold node genes and connection
//! genes, populations are partitioned into species by a compatibility
//! distance, fitness is shared within species, and new generations are
//! produced by crossover plus five kinds of structural/weight mutation.
//!
//! Two properties distinguish this implementation from a textbook NEAT:
//!
//! 1. **Order-independent determinism.** Every stochastic decision derives
//!    its RNG stream from `(master_seed, generation, entity_id, op)` via a
//!    splitmix64 mixer ([`rng`]). Reproducing child #37 on agent A yields
//!    bit-identical results to reproducing it on agent B, which is what
//!    makes the distributed CLAN configurations (`DCS`/`DDS`) provably
//!    equivalent to a serial run.
//! 2. **Gene-level cost accounting.** The CLAN paper measures compute and
//!    communication in *genes processed* (a gene is a 32-bit datum). The
//!    [`counters::CostCounters`] type records exactly how many genes each
//!    compute block (Inference, Speciation, Reproduction) touches.
//!
//! ## The inference hot path: scratch buffers
//!
//! Inference dominates a generation's compute (paper Fig. 3), and one
//! episode activates a network hundreds of times. The hot tier of the
//! activation API is allocation-free: callers own a
//! [`Scratch`] whose buffers are reused across steps,
//! episodes, and networks —
//!
//! ```
//! use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig, Scratch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let cfg = NeatConfig::builder(2, 1).build()?;
//! let genome = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(7));
//! let net = FeedForwardNetwork::compile(&genome, &cfg);
//! let mut scratch = Scratch::new();
//! for step in 0..200 {
//!     let x = step as f64 / 200.0;
//!     // Zero heap allocations per call once the buffers have grown.
//!     let action = net.act_argmax_with(&[x, -x], &mut scratch);
//!     assert!(action < 1);
//! }
//! # Ok::<(), clan_neat::NeatError>(())
//! ```
//!
//! [`FeedForwardNetwork::activate`] and
//! [`FeedForwardNetwork::act_argmax`] remain as compatibility wrappers
//! over a thread-local scratch; results are bit-identical across tiers.
//!
//! ## Parallel evaluation: the determinism contract
//!
//! Because every episode seed derives from
//! `(master_seed, genome content hash)` — never from execution order or
//! the genome's transient id — evaluation parallelizes without changing
//! a single bit of the trajectory. [`Population::evaluate_parallel`]
//! shards the population across worker threads (each worker gets its own
//! evaluator state via a factory) and merges results back in genome-id
//! order; [`Population::evaluate_batch`] applies externally computed
//! evaluations under the same ordering rule. Fitness,
//! [`CostCounters`], and `best_ever` are identical at any thread count —
//! the property the CLAN configurations rely on, asserted end-to-end in
//! `tests/equivalence.rs`.
//!
//! ## Batched inference & fitness cache
//!
//! Two engine-level optimizations sit on top of the scratch tier, both
//! contractually bit-identical to it (pinned by
//! `tests/cache_equivalence.rs`):
//!
//! - **Structure-of-arrays batching** ([`batch`]). NEAT populations are
//!   full of same-shape networks (clones, elites, weight-mutated
//!   siblings). [`BatchedNetwork`] groups compiled networks by
//!   [`ShapeKey`] — the CSR layout signature from
//!   [`FeedForwardNetwork::compile`] — packs the group's weights into
//!   contiguous lanes, and activates all lanes in lockstep, turning the
//!   per-genome node walk into dense array sweeps. Genomes whose shape
//!   is unique in a round simply take the scalar [`Scratch`] tier.
//! - **Content-addressed caching** ([`cache`]). Elites and unmutated
//!   crossover survivors re-enter evaluation every generation under
//!   fresh ids. [`Genome::content_hash`] gives them a canonical name —
//!   stable under gene reordering, blind to id/fitness, sensitive to
//!   every attribute down to the last ulp — and [`FitnessCache`]
//!   memoizes evaluations by `(master_seed, content_hash)`. Because
//!   episode seeds also derive from the content hash, a hit replays
//!   *exactly* the episodes a fresh run would, so serving it from the
//!   cache is bit-identical and skips both compilation and every
//!   environment step. Enable per population with
//!   [`Population::set_fitness_caching`] (the `clan-core` evaluators
//!   own their caches and enable this by default).
//!
//! ## Quickstart
//!
//! ```
//! use clan_neat::{NeatConfig, Population};
//!
//! // Evolve a genome that outputs a constant 0.5 from one input.
//! let cfg = NeatConfig::builder(1, 1).population_size(40).build().unwrap();
//! let mut pop = Population::new(cfg, 42);
//! for _ in 0..5 {
//!     pop.evaluate(|net, _genome| {
//!         let out = net.activate(&[1.0])[0];
//!         1.0 - (out - 0.5).abs()
//!     });
//!     pop.advance_generation();
//! }
//! assert!(pop.best_ever().unwrap().fitness().unwrap() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod batch;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod counters;
pub mod error;
pub mod gene;
pub mod genome;
pub mod network;
pub mod population;
pub mod reproduction;
pub mod rng;
pub mod serde_util;
pub mod species;
pub mod stagnation;
pub mod steady_state;
pub mod visualize;

pub use activation::{Activation, Aggregation};
pub use batch::{BatchedNetwork, ShapeKey};
pub use cache::{CachedEvaluation, FitnessCache};
pub use config::{NeatConfig, NeatConfigBuilder};
pub use counters::{CostCounters, GenerationCosts};
pub use error::NeatError;
pub use gene::{ConnGene, ConnKey, GenomeId, NodeGene, NodeId, SpeciesId};
pub use genome::Genome;
pub use network::{FeedForwardNetwork, Scratch};
pub use population::{FitnessStats, Population};
pub use reproduction::{ChildSpec, GenerationPlan};
pub use species::{Species, SpeciesSet};
pub use steady_state::{steady_state_insert, InsertReport};
pub use visualize::genome_to_dot;
