//! The baseline ratchet.
//!
//! `lint-baseline.txt` records the violations the workspace is *known*
//! to still carry, aggregated per `(rule, file)` — aggregation by count
//! rather than by line number keeps the baseline stable under unrelated
//! edits that shift lines. `--check` fails in **both** directions:
//!
//! - a count above the baseline is a **new violation** (fix or waive it),
//! - a count below the baseline is a **stale entry** (regenerate the
//!   baseline with `--write-baseline` and commit the smaller file).
//!
//! Failing on stale entries is what makes this a ratchet: every fix is
//! locked in by the commit that shrinks the baseline, so the count can
//! only go down.

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-`(rule, file)` violation counts, ordered for stable rendering.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregates raw violations into baseline counts. `W0` (malformed
/// waiver) is deliberately *not* baselineable: a broken waiver must be
/// fixed in the same change that introduced it.
pub fn count(violations: &[Violation]) -> Counts {
    let mut c = Counts::new();
    for v in violations {
        if v.rule == "W0" {
            continue;
        }
        *c.entry((v.rule.to_string(), v.path.clone())).or_insert(0) += 1;
    }
    c
}

/// Renders counts in the committed baseline format.
pub fn render(counts: &Counts) -> String {
    let mut s = String::from(
        "# clan-lint baseline — known violations, per rule and file.\n\
         # Regenerate (only ever smaller) with:\n\
         #   cargo run -p clan-lint --release -- --write-baseline lint-baseline.txt\n",
    );
    for ((rule, path), n) in counts {
        let _ = writeln!(s, "{rule}\t{path}\t{n}");
    }
    s
}

/// Parses a committed baseline file. Lines are `RULE\tpath\tcount`;
/// `#` comments and blank lines are ignored.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut c = Counts::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(n)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "baseline line {}: expected RULE\\tpath\\tcount",
                i + 1
            ));
        };
        let n: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{n}`", i + 1))?;
        if c.insert((rule.to_string(), path.to_string()), n).is_some() {
            return Err(format!("baseline line {}: duplicate entry", i + 1));
        }
    }
    Ok(c)
}

/// One ratchet discrepancy.
#[derive(Debug, PartialEq, Eq)]
pub enum Drift {
    /// Current count exceeds the baseline: new violations crept in.
    New {
        /// Rule id.
        rule: String,
        /// File path.
        path: String,
        /// Current count.
        current: usize,
        /// Baselined count.
        baselined: usize,
    },
    /// Current count is below the baseline: the entry is stale and the
    /// baseline must be regenerated (ratcheted down) in this change.
    Stale {
        /// Rule id.
        rule: String,
        /// File path.
        path: String,
        /// Current count.
        current: usize,
        /// Baselined count.
        baselined: usize,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::New {
                rule,
                path,
                current,
                baselined,
            } => write!(
                f,
                "NEW  {rule} {path}: {current} violation(s), baseline allows {baselined}"
            ),
            Drift::Stale {
                rule,
                path,
                current,
                baselined,
            } => write!(
                f,
                "STALE {rule} {path}: baseline says {baselined}, only {current} remain — \
                 ratchet down with --write-baseline"
            ),
        }
    }
}

/// Compares current counts against the committed baseline, returning
/// every discrepancy in both directions (empty means the check passes).
pub fn check(current: &Counts, baseline: &Counts) -> Vec<Drift> {
    let mut drift = Vec::new();
    let keys: std::collections::BTreeSet<_> = current.keys().chain(baseline.keys()).collect();
    for key in keys {
        let cur = current.get(key).copied().unwrap_or(0);
        let base = baseline.get(key).copied().unwrap_or(0);
        let (rule, path) = (key.0.clone(), key.1.clone());
        if cur > base {
            drift.push(Drift::New {
                rule,
                path,
                current: cur,
                baselined: base,
            });
        } else if cur < base {
            drift.push(Drift::Stale {
                rule,
                path,
                current: cur,
                baselined: base,
            });
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: u32) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let counts = count(&[
            v("L1", "crates/core/src/runtime.rs", 3),
            v("L1", "crates/core/src/runtime.rs", 9),
            v("D1", "crates/neat/src/cache.rs", 1),
        ]);
        let parsed = parse(&render(&counts)).expect("round trip");
        assert_eq!(parsed, counts);
    }

    #[test]
    fn w0_is_never_baselineable() {
        let counts = count(&[v("W0", "crates/neat/src/cache.rs", 1)]);
        assert!(counts.is_empty());
    }

    #[test]
    fn check_flags_both_directions() {
        let base = parse("L1\ta.rs\t2\nD1\tb.rs\t1\n").expect("parse");
        let current = count(&[v("L1", "a.rs", 1), v("L1", "a.rs", 2), v("L1", "a.rs", 3)]);
        let drift = check(&current, &base);
        assert_eq!(drift.len(), 2);
        assert!(matches!(&drift[0], Drift::Stale { rule, .. } if rule == "D1"));
        assert!(matches!(&drift[1], Drift::New { rule, current: 3, .. } if rule == "L1"));
    }

    #[test]
    fn equal_counts_pass() {
        let current = count(&[v("L1", "a.rs", 1)]);
        assert!(check(&current, &current.clone()).is_empty());
    }
}
