//! `clan-lint` CLI.
//!
//! ```text
//! clan-lint [--root DIR]                      # scan, print all findings
//! clan-lint --check --baseline FILE [--root DIR]
//!     # exit 1 on any new violation OR any stale baseline entry
//! clan-lint --write-baseline FILE [--root DIR]
//! clan-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean / check passed, 1 findings / ratchet drift,
//! 2 usage or I/O error.

use clan_lint::{baseline, lint_root, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut check = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--check" => check = true,
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_path = Some(PathBuf::from(v)),
                None => return usage("--write-baseline needs a file"),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if check && baseline_path.is_none() {
        return usage("--check requires --baseline FILE");
    }

    let violations = match lint_root(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("clan-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let counts = baseline::count(&violations);

    if let Some(path) = write_path {
        if let Err(e) = std::fs::write(&path, baseline::render(&counts)) {
            eprintln!("clan-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "clan-lint: wrote {} entries ({} violations) to {}",
            counts.len(),
            violations.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if check {
        let path = baseline_path.expect("checked above");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("clan-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("clan-lint: {e}");
                return ExitCode::from(2);
            }
        };
        // W0 findings are never baselineable: report and fail directly.
        let w0: Vec<_> = violations.iter().filter(|v| v.rule == "W0").collect();
        for v in &w0 {
            println!("{v}");
        }
        let drift = baseline::check(&counts, &base);
        for d in &drift {
            println!("{d}");
        }
        // Print the concrete findings behind every NEW drift so the
        // report names file:line, not just counts.
        for d in &drift {
            if let baseline::Drift::New { rule, path, .. } = d {
                for v in violations
                    .iter()
                    .filter(|v| v.rule == rule && &v.path == path)
                {
                    println!("{v}");
                }
            }
        }
        return if drift.is_empty() && w0.is_empty() {
            println!(
                "clan-lint: check passed — {} baselined violation(s) across {} entries, none new",
                counts.values().sum::<usize>(),
                counts.len()
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &violations {
        println!("{v}");
    }
    println!(
        "clan-lint: {} violation(s) in {} (rule, file) group(s)",
        violations.len(),
        counts.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("clan-lint: {err}");
    eprintln!(
        "usage: clan-lint [--root DIR] [--check --baseline FILE] \
         [--write-baseline FILE] [--list-rules]"
    );
    ExitCode::from(2)
}
