//! The rule catalogue: what each contract rule matches and where it
//! applies.
//!
//! Every rule is scoped to the files whose contracts it defends —
//! scoping is part of the rule, not a CLI flag, so the catalogue is the
//! single source of truth for "which code is determinism-bearing" and
//! "which code is liveness-bearing". Paths are workspace-relative with
//! `/` separators.
//!
//! | Rule | Contract | Matches |
//! |------|----------|---------|
//! | `D1` | determinism | `HashMap`/`HashSet` in determinism-bearing crates |
//! | `D2` | determinism | `Instant::now`/`SystemTime`/`thread_rng`/`from_entropy` outside the designated timing module (`telemetry/clock.rs`) |
//! | `D3` | determinism | `.sum()`/`.fold(` float-reassociation idioms in kernel files |
//! | `L1` | liveness   | `.unwrap()`/`.expect(`/`panic!`/wire-buffer indexing in transport/session code |
//! | `L2` | liveness   | `recv` in a transport fn with no timeout-bearing path |
//! | `W0` | meta       | malformed waiver comments (missing reason, bad grammar) |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! everywhere: panicking asserts and ad-hoc maps are what tests are
//! made of.

use crate::tokenizer::{tokenize, Tok, Tokenized};
use std::fmt;

/// One finding, formatted as `rule:file:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`D1`…`L2`, `W0`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the hazard.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// Rule ids in catalogue order (useful for `--list-rules` and tests).
pub const RULES: [&str; 6] = ["D1", "D2", "D3", "L1", "L2", "W0"];

// ---------------------------------------------------------------------
// Scoping: which files each rule defends.
// ---------------------------------------------------------------------

/// Determinism-bearing code: all of `clan-neat`, and all of `clan-core`
/// except the transport layer (wire timers/ARQ are wall-clock by
/// nature; determinism there is defended at the *message* level by the
/// equivalence suites, not at the token level).
fn determinism_scope(path: &str) -> bool {
    (path.starts_with("crates/neat/src/") || path.starts_with("crates/core/src/"))
        && !path.starts_with("crates/core/src/transport/")
}

/// Kernel files whose FP accumulation order is documented and must not
/// drift: the scalar activation kernel and the SoA batch kernel.
fn kernel_scope(path: &str) -> bool {
    path == "crates/neat/src/network.rs" || path == "crates/neat/src/batch.rs"
}

/// Liveness-bearing code: everything that touches wire-derived data or
/// runs a session loop. Contract: typed `ClanError`/`FrameError`, never
/// a panic or a hang.
fn liveness_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/transport/")
        || path == "crates/core/src/runtime.rs"
        || path == "crates/core/src/membership.rs"
}

/// The designated wall-clock capture point: the telemetry clock is the
/// one module in determinism scope allowed to call `Instant::now`, so
/// every wall timestamp in a trace flows through a single audited site.
fn timing_scope(path: &str) -> bool {
    path == "crates/core/src/telemetry/clock.rs"
}

/// Transport code proper, for the recv-timeout rule.
fn transport_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/transport/")
}

/// Whether any rule applies to `path` at all (drives the file walk).
pub fn in_any_scope(path: &str) -> bool {
    determinism_scope(path) || kernel_scope(path) || liveness_scope(path)
}

// ---------------------------------------------------------------------
// The linter.
// ---------------------------------------------------------------------

/// Lints one source file under the default catalogue. `path` must be
/// workspace-relative with `/` separators — scoping keys off it.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let t = tokenize(src);
    let in_test = mark_test_code(&t.toks);
    let mut out = Vec::new();

    // W0 first: a malformed waiver is a finding wherever it appears in
    // a scoped file (it silently fails to waive, which is worse than no
    // waiver at all).
    if in_any_scope(path) {
        for (line, what) in &t.malformed {
            out.push(Violation {
                rule: "W0",
                path: path.to_string(),
                line: *line,
                message: what.clone(),
            });
        }
    }

    if determinism_scope(path) {
        rule_d1(path, &t, &in_test, &mut out);
        if !timing_scope(path) {
            rule_d2(path, &t, &in_test, &mut out);
        }
    }
    if kernel_scope(path) {
        rule_d3(path, &t, &in_test, &mut out);
    }
    if liveness_scope(path) {
        rule_l1(path, &t, &in_test, &mut out);
    }
    if transport_scope(path) {
        rule_l2(path, &t, &in_test, &mut out);
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Pushes a violation unless an inline waiver covers it.
fn push(
    out: &mut Vec<Violation>,
    t: &Tokenized,
    rule: &'static str,
    path: &str,
    line: u32,
    message: String,
) {
    if !t.is_waived(rule, line) {
        out.push(Violation {
            rule,
            path: path.to_string(),
            line,
            message,
        });
    }
}

/// D1: iteration-order-nondeterministic collections.
fn rule_d1(path: &str, t: &Tokenized, in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, tok) in t.toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = tok.ident() {
            push(
                out,
                t,
                "D1",
                path,
                tok.line(),
                format!(
                    "`{name}` in determinism-bearing code: iteration order varies \
                     per process; use BTreeMap/BTreeSet or waive a lookup-only use"
                ),
            );
        }
    }
}

/// D2: ambient nondeterminism (wall clock, OS entropy).
fn rule_d2(path: &str, t: &Tokenized, in_test: &[bool], out: &mut Vec<Violation>) {
    let toks = &t.toks;
    for (i, tok) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let Some(name) = tok.ident() else { continue };
        let hit = match name {
            // `Instant::now(…)` — require the path form so a local
            // variable named `now` never trips it.
            "Instant" => {
                toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).and_then(Tok::ident) == Some("now")
            }
            "SystemTime" | "thread_rng" | "from_entropy" => true,
            _ => false,
        };
        if hit {
            push(
                out,
                t,
                "D2",
                path,
                tok.line(),
                format!(
                    "ambient nondeterminism (`{name}`) outside the designated timing \
                     modules; derive from the seeded RNG or the virtual-time layer"
                ),
            );
        }
    }
}

/// D3: float-reassociation idioms in kernel files.
fn rule_d3(path: &str, t: &Tokenized, in_test: &[bool], out: &mut Vec<Violation>) {
    let toks = &t.toks;
    for (i, tok) in toks.iter().enumerate() {
        if in_test[i] || !tok.is_punct('.') {
            continue;
        }
        if let Some(name @ ("sum" | "fold")) = toks.get(i + 1).and_then(Tok::ident) {
            push(
                out,
                t,
                "D3",
                path,
                tok.line(),
                format!(
                    "`.{name}(…)` in a kernel file: iterator accumulation hides the \
                     FP term order the batch/scalar equivalence contract documents; \
                     keep the explicit per-lane loop or waive the canonical site"
                ),
            );
        }
    }
}

/// Identifiers that (by local convention) hold wire-derived bytes;
/// indexing them can panic on hostile input.
const WIRE_BUFFER_NAMES: [&str; 4] = ["buf", "payload", "frags", "datagram"];

/// L1: panic paths in liveness-bearing code.
fn rule_l1(path: &str, t: &Tokenized, in_test: &[bool], out: &mut Vec<Violation>) {
    let toks = &t.toks;
    for (i, tok) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        // `.unwrap()` / `.expect(` — method position only, so
        // `unwrap_or`/`expect_err` and free fns named `unwrap` don't trip.
        if tok.is_punct('.') {
            if let Some(name @ ("unwrap" | "expect")) = toks.get(i + 1).and_then(Tok::ident) {
                if toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                    push(
                        out,
                        t,
                        "L1",
                        path,
                        tok.line(),
                        format!(
                            "`.{name}(…)` on a liveness path: a malformed peer or lost \
                             socket must surface a typed ClanError/FrameError, not a panic"
                        ),
                    );
                }
            }
            continue;
        }
        if let Some(name) = tok.ident() {
            // `panic!(` / `unreachable!(` / `todo!(`.
            if matches!(name, "panic" | "unreachable" | "todo")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                push(
                    out,
                    t,
                    "L1",
                    path,
                    tok.line(),
                    format!("`{name}!` on a liveness path: return a typed error instead"),
                );
            }
            // Indexing a wire-derived buffer: `buf[…]`, `payload[…]`.
            // A preceding `.` (field access `self.buf[…]`) still lands
            // here because the ident itself is what we key on.
            if WIRE_BUFFER_NAMES.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            {
                push(
                    out,
                    t,
                    "L1",
                    path,
                    tok.line(),
                    format!(
                        "indexing wire-derived buffer `{name}[…]` can panic on hostile \
                         input; bounds-check and return FrameError::Truncated, or waive \
                         a checked site"
                    ),
                );
            }
        }
    }
}

/// Names that count as receiving from a peer.
const RECV_NAMES: [&str; 3] = ["recv", "recv_frame", "recv_message"];

/// L2: every `recv` in transport code must sit in a function with a
/// timeout-bearing path. Heuristic: the enclosing `fn`'s name or body
/// must mention a timeout/deadline identifier; otherwise a silent peer
/// can hang the call forever. Waivable for fns whose timeout lives one
/// call down (document where).
fn rule_l2(path: &str, t: &Tokenized, in_test: &[bool], out: &mut Vec<Violation>) {
    let toks = &t.toks;
    for f in functions(toks) {
        if in_test.get(f.name_idx).copied().unwrap_or(false) {
            continue;
        }
        let body = &toks[f.body_start..f.body_end];
        let timeout_bearing = ident_mentions_timeout(&f.name)
            || body
                .iter()
                .any(|t| t.ident().is_some_and(ident_mentions_timeout));
        if timeout_bearing {
            continue;
        }
        for (j, tok) in body.iter().enumerate() {
            let Some(name) = tok.ident() else { continue };
            if RECV_NAMES.contains(&name) && body.get(j + 1).is_some_and(|t| t.is_punct('(')) {
                push(
                    out,
                    t,
                    "L2",
                    path,
                    tok.line(),
                    format!(
                        "`{name}(…)` in fn `{}` with no timeout-bearing path in sight: \
                         a silent peer hangs this call; route through an idle-deadline \
                         or waive with the location of the timeout",
                        f.name
                    ),
                );
            }
        }
    }
}

fn ident_mentions_timeout(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("timeout") || lower.contains("deadline")
}

// ---------------------------------------------------------------------
// Structure passes: test-code ranges and function extents.
// ---------------------------------------------------------------------

/// Marks each token as test code if it falls inside a `#[cfg(test)]`
/// module/function or a `#[test]` function.
fn mark_test_code(toks: &[Tok]) -> Vec<bool> {
    let mut test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = test_attr_end(toks, i) {
            // Skip any further attributes between the marker and the
            // item (`#[cfg(test)] #[allow(dead_code)] mod tests`).
            let mut j = after_attr;
            while toks.get(j).is_some_and(|t| t.is_punct('#')) {
                j = skip_attr(toks, j);
            }
            // Find the item's body: first `{` before a terminating `;`
            // (a `#[cfg(test)] use …;` has no body).
            let mut k = j;
            let mut body = None;
            while let Some(t) = toks.get(k) {
                if t.is_punct('{') {
                    body = Some(k);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                k += 1;
            }
            if let Some(open) = body {
                let close = matching_brace(toks, open);
                for slot in test.iter_mut().take(close).skip(i) {
                    *slot = true;
                }
                i = close;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    test
}

/// If `i` starts a `#[cfg(test)]` or `#[test]` attribute, returns the
/// index one past its closing `]`.
fn test_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let end = skip_attr(toks, i);
    let inner = &toks[i + 2..end.saturating_sub(1)];
    let is_test = match inner.first().and_then(Tok::ident) {
        Some("test") => inner.len() == 1,
        // `cfg(test)` / `cfg(any(test, …))` mark test code;
        // `cfg(not(test))` is production and must stay linted.
        Some("cfg") => {
            inner.iter().any(|t| t.ident() == Some("test"))
                && !inner.iter().any(|t| t.ident() == Some("not"))
        }
        _ => false,
    };
    is_test.then_some(end)
}

/// Returns the index one past an attribute's closing `]` (`i` points at
/// `#`). Tolerates nested brackets.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0usize;
    while let Some(t) = toks.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index one past the brace matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// One extracted function: name and body token range.
struct Fn_ {
    name: String,
    name_idx: usize,
    body_start: usize,
    body_end: usize,
}

/// Extracts every `fn name … { body }` by brace matching. Trait-method
/// *declarations* (`fn f(…);`) have no body and are skipped.
fn functions(toks: &[Tok]) -> Vec<Fn_> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    // Scan to the body `{`, stopping at `;` (bodyless).
                    let mut k = i + 2;
                    let mut open = None;
                    while let Some(t) = toks.get(k) {
                        if t.is_punct('{') {
                            open = Some(k);
                            break;
                        }
                        if t.is_punct(';') {
                            break;
                        }
                        k += 1;
                    }
                    if let Some(open) = open {
                        let close = matching_brace(toks, open);
                        out.push(Fn_ {
                            name: name.to_string(),
                            name_idx: i + 1,
                            body_start: open,
                            body_end: close,
                        });
                        // Nested fns are rare and would be double-
                        // counted; continue past the *header*, not the
                        // body, so closures with `fn` in types are safe.
                        i = open;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src)
            .iter()
            .map(|v| v.to_string())
            .collect()
    }

    #[test]
    fn d1_flags_hashmap_in_scope_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_at("crates/neat/src/population.rs", src).len(), 1);
        assert_eq!(lint_at("crates/envs/src/cartpole.rs", src).len(), 0);
        assert_eq!(lint_at("crates/core/src/transport/udp.rs", src).len(), 0);
    }

    #[test]
    fn d1_respects_waivers_same_line_and_above() {
        let same = "let m: HashMap<u32, u32> = HashMap::new(); // clan-lint: allow(D1, reason=\"lookup-only\")\n";
        assert!(lint_at("crates/neat/src/cache.rs", same).is_empty());
        let above = "// clan-lint: allow(D1, reason=\"lookup-only\")\nlet m: HashMap<u32, u32> = HashMap::new();\n";
        assert!(lint_at("crates/neat/src/cache.rs", above).is_empty());
    }

    #[test]
    fn w0_flags_reasonless_waiver_and_keeps_the_violation() {
        let src = "// clan-lint: allow(D1)\nlet m = HashMap::new();\n";
        let v = lint_source("crates/neat/src/cache.rs", src);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"W0"), "{v:?}");
        assert!(rules.contains(&"D1"), "{v:?}");
    }

    #[test]
    fn d2_requires_path_form_for_instant() {
        let src = "let t = Instant::now();\nlet now = 3;\n";
        let v = lint_source("crates/core/src/driver.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn d2_exempts_the_telemetry_clock_only() {
        let src = "let t = Instant::now();\n";
        assert!(lint_at("crates/core/src/telemetry/clock.rs", src).is_empty());
        // The rest of the telemetry module stays under D2: wall time
        // must flow through the clock, not be captured ad hoc.
        assert_eq!(lint_at("crates/core/src/telemetry/event.rs", src).len(), 1);
        // And D1 still applies inside the clock file.
        let map = "use std::collections::HashMap;\n";
        assert_eq!(lint_at("crates/core/src/telemetry/clock.rs", map).len(), 1);
    }

    #[test]
    fn l1_method_position_only() {
        let src = "let x = r.unwrap();\nlet y = r.unwrap_or(0);\nlet z = unwrap(r);\n";
        let v = lint_source("crates/core/src/transport/tcp.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l1_skips_test_modules() {
        let src = "fn prod(r: Result<u8, ()>) { r.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t(r: Result<u8, ()>) { r.unwrap(); }\n}\n";
        let v = lint_source("crates/core/src/transport/tcp.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l2_flags_bare_recv_not_timeout_guarded() {
        let bare = "fn pull(t: &mut T) -> Frame { t.recv() }\n";
        assert_eq!(
            lint_at("crates/core/src/transport/channel.rs", bare).len(),
            1
        );
        let guarded =
            "fn pull(t: &mut T) -> Frame { if idle > self.idle_timeout { fail() } t.recv() }\n";
        assert!(lint_at("crates/core/src/transport/channel.rs", guarded).is_empty());
        let named = "fn pull_with_timeout(t: &mut T) -> Frame { t.recv() }\n";
        assert!(lint_at("crates/core/src/transport/channel.rs", named).is_empty());
    }

    #[test]
    fn d3_flags_sum_in_kernel_files_only() {
        let src = "let s: f64 = xs.iter().sum();\n";
        assert_eq!(lint_at("crates/neat/src/network.rs", src).len(), 1);
        assert!(lint_at("crates/neat/src/genome.rs", src).is_empty());
    }
}
