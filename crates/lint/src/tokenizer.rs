//! A hand-rolled, comment/string/raw-string-aware Rust tokenizer.
//!
//! The rules in [`crate::rules`] match *token sequences*, never raw
//! text, so a `HashMap` inside a doc comment, a `"…unwrap()…"` string
//! literal, or an `r#"…panic!…"#` raw string can never produce a
//! finding. The tokenizer follows the same discipline as the vendored
//! `serde_derive` shim: no `syn`, no crates.io — just a byte scanner
//! that understands exactly as much Rust lexical structure as the rule
//! catalogue needs:
//!
//! - line (`//`, `///`, `//!`) and nested block (`/* /* */ */`) comments
//! - string literals with escapes, byte strings, raw strings with any
//!   number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`)
//! - char literals vs lifetimes (`'a'` vs `'a`)
//! - identifiers, numeric literals (including `0x…`, `1_000`, `1.5e3`),
//!   and single-char punctuation
//!
//! Line comments are additionally scanned for the waiver grammar
//! `// clan-lint: allow(RULE, reason="…")`; see [`Waiver`].

/// One lexical token. String/char literal *content* is deliberately
/// dropped — rules must be blind to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident {
        /// 1-based source line.
        line: u32,
        /// The identifier text.
        name: String,
    },
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct {
        /// 1-based source line.
        line: u32,
        /// The character.
        ch: char,
    },
    /// A numeric literal (value dropped).
    Num {
        /// 1-based source line.
        line: u32,
    },
    /// A string, byte-string, raw-string, or char literal (content
    /// dropped).
    Str {
        /// 1-based source line.
        line: u32,
    },
    /// A lifetime (`'a`).
    Lifetime {
        /// 1-based source line.
        line: u32,
    },
}

impl Tok {
    /// The 1-based source line the token starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tok::Ident { line, .. }
            | Tok::Punct { line, .. }
            | Tok::Num { line }
            | Tok::Str { line }
            | Tok::Lifetime { line } => *line,
        }
    }

    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `ch`.
    pub fn is_punct(&self, want: char) -> bool {
        matches!(self, Tok::Punct { ch, .. } if *ch == want)
    }
}

/// A parsed `// clan-lint: allow(RULE, reason="…")` waiver comment.
///
/// A waiver suppresses violations of `rule` on the line it appears on
/// and on the immediately following line — covering both the
/// trailing-comment and comment-above styles. The reason is mandatory:
/// a waiver without one is itself reported (rule `W0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment is on.
    pub line: u32,
    /// The rule being waived (e.g. `"D1"`).
    pub rule: String,
    /// The mandatory justification. `None` means the waiver is
    /// malformed and must be reported.
    pub reason: Option<String>,
}

/// The result of tokenizing one source file.
#[derive(Debug, Default)]
pub struct Tokenized {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Well-formed and malformed waivers found in line comments.
    pub waivers: Vec<Waiver>,
    /// Lines holding a comment that *looks* like a waiver
    /// (`clan-lint:` marker present) but does not parse, with a
    /// description of what is wrong.
    pub malformed: Vec<(u32, String)>,
}

impl Tokenized {
    /// Whether `rule` is waived on `line` (waivers cover their own line
    /// and the next one).
    pub fn is_waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.reason.is_some() && w.rule == rule && (w.line == line || w.line + 1 == line))
    }
}

/// Tokenizes one Rust source file. Never fails: unrecognized bytes
/// become punctuation tokens and an unterminated literal simply ends
/// the stream at EOF.
pub fn tokenize(src: &str) -> Tokenized {
    let b = src.as_bytes();
    let mut out = Tokenized::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment_for_waiver(&src[start..i], line, &mut out);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                skip_quoted(b, &mut i, &mut line);
                out.toks.push(Tok::Str { line: tok_line });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let tok_line = line;
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if n.is_ascii_alphabetic() || n == b'_')
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok::Lifetime { line: tok_line });
                } else {
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 1;
                        if i < b.len() {
                            if b[i] == b'u' {
                                while i < b.len() && b[i] != b'}' && b[i] != b'\'' {
                                    i += 1;
                                }
                            }
                            i += 1;
                        }
                    } else if i < b.len() {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.toks.push(Tok::Str { line: tok_line });
                }
            }
            b'0'..=b'9' => {
                let tok_line = line;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // `1.5` consumes the dot; `1..x` leaves the
                        // range operator alone.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok::Num { line: tok_line });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let tok_line = line;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let name = &src[start..i];
                // Raw/byte string prefixes: the "identifier" is really
                // the start of a literal.
                let next = b.get(i).copied();
                let starts_string = match name {
                    "r" | "br" => next == Some(b'"') || next == Some(b'#'),
                    "b" => next == Some(b'"'),
                    _ => false,
                };
                let starts_byte_char = name == "b" && next == Some(b'\'');
                if starts_string && name != "b" {
                    // Raw string: count `#` guards, then scan for the
                    // closing `"` followed by the same number of `#`s.
                    let mut hashes = 0usize;
                    while i < b.len() && b[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < b.len() && b[i] == b'"' {
                        i += 1;
                        'raw: while i < b.len() {
                            if b[i] == b'\n' {
                                line += 1;
                                i += 1;
                            } else if b[i] == b'"' {
                                let mut j = i + 1;
                                let mut seen = 0usize;
                                while seen < hashes && j < b.len() && b[j] == b'#' {
                                    seen += 1;
                                    j += 1;
                                }
                                i = j;
                                if seen == hashes {
                                    break 'raw;
                                }
                            } else {
                                i += 1;
                            }
                        }
                        out.toks.push(Tok::Str { line: tok_line });
                    } else {
                        // `r#ident` raw identifier or stray `r#`: emit
                        // the prefix as an identifier and continue.
                        out.toks.push(Tok::Ident {
                            line: tok_line,
                            name: name.to_string(),
                        });
                    }
                } else if starts_string {
                    // b"…" byte string: normal escape rules.
                    i += 1;
                    skip_quoted(b, &mut i, &mut line);
                    out.toks.push(Tok::Str { line: tok_line });
                } else if starts_byte_char {
                    i += 1; // opening quote
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.toks.push(Tok::Str { line: tok_line });
                } else {
                    out.toks.push(Tok::Ident {
                        line: tok_line,
                        name: name.to_string(),
                    });
                }
            }
            _ => {
                out.toks.push(Tok::Punct {
                    line,
                    ch: c as char,
                });
                i += 1;
            }
        }
    }
    out
}

/// Advances `*i` past a `"`-terminated literal body (opening quote
/// already consumed), honoring `\` escapes and counting newlines.
fn skip_quoted(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                // A `\` escape consumes the next byte too — which may
                // be a line-continuation newline that must be counted.
                if b.get(*i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Parses the waiver grammar out of one line comment, recording either
/// a [`Waiver`] or a malformed-waiver diagnostic. Comments without the
/// `clan-lint:` marker are ignored.
fn scan_comment_for_waiver(comment: &str, line: u32, out: &mut Tokenized) {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let Some(rest) = body.strip_prefix("clan-lint:") else {
        return;
    };
    let rest = rest.trim();
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        out.malformed.push((
            line,
            format!("expected `allow(RULE, reason=\"…\")`, got `{rest}`"),
        ));
        return;
    };
    let (rule, tail) = match args.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => (args.trim(), ""),
    };
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        out.malformed
            .push((line, format!("bad rule name `{rule}` in waiver")));
        return;
    }
    let reason = tail
        .strip_prefix("reason=")
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
        .filter(|r| !r.is_empty());
    if reason.is_none() {
        out.malformed.push((
            line,
            format!("waiver for {rule} is missing its mandatory reason=\"…\""),
        ));
    }
    out.waivers.push(Waiver {
        line,
        rule: rule.to_string(),
        reason: reason.map(str::to_string),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r###"
// HashMap in a comment
/// HashMap in a doc comment
/* HashMap /* nested */ still comment */
let s = "HashMap::unwrap()";
let r = r#"panic!("HashMap")"#;
let c = 'H';
let real = BTreeMap::new();
"###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "panic"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            t.toks
                .iter()
                .filter(|t| matches!(t, Tok::Lifetime { .. }))
                .count(),
            3
        );
        assert!(t.toks.iter().all(|t| !matches!(t, Tok::Str { .. })));
    }

    #[test]
    fn lines_survive_multiline_literals() {
        let src = "let s = \"a\nb\nc\";\nlet x = HashMap::new();";
        let t = tokenize(src);
        let h = t
            .toks
            .iter()
            .find(|t| t.ident() == Some("HashMap"))
            .expect("HashMap token");
        assert_eq!(h.line(), 4);
    }

    #[test]
    fn waiver_parses_with_reason() {
        let t = tokenize("// clan-lint: allow(D1, reason=\"lookup-only\")\nlet m = 1;");
        assert_eq!(t.waivers.len(), 1);
        assert_eq!(t.waivers[0].rule, "D1");
        assert_eq!(t.waivers[0].reason.as_deref(), Some("lookup-only"));
        assert!(t.is_waived("D1", 1));
        assert!(t.is_waived("D1", 2));
        assert!(!t.is_waived("D1", 3));
        assert!(!t.is_waived("L1", 2));
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        let t = tokenize("// clan-lint: allow(D1)");
        assert_eq!(t.malformed.len(), 1);
        assert!(!t.is_waived("D1", 1), "reasonless waiver must not waive");
    }

    #[test]
    fn raw_identifier_does_not_eat_the_file() {
        let ids = idents("let r#type = 1; let after = HashMap::new();");
        assert!(ids.iter().any(|i| i == "HashMap"));
    }
}
