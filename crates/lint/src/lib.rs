//! `clan-lint`: workspace static analysis enforcing the determinism and
//! liveness contracts the CLAN reproduction's claims rest on.
//!
//! The equivalence suites prove bit-identity *after the fact*; this
//! crate stops the two hazard classes they can miss from creeping in at
//! all:
//!
//! - **Determinism** (`D1`–`D3`): every execution mode must replay
//!   bit-identically per `(seed, schedule)`. Iteration-order-varying
//!   collections, ambient clocks/entropy, and FP-reassociating iterator
//!   idioms silently break that without failing any one run.
//! - **Liveness** (`L1`–`L2`): transport and session code must surface
//!   typed `ClanError`/`FrameError` — never a panic on hostile bytes,
//!   never a hang on a silent peer.
//!
//! The scanner is offline and dependency-free: a hand-rolled
//! comment/string/raw-string-aware tokenizer ([`tokenizer`]) feeds a
//! scoped rule catalogue ([`rules`]), findings are waivable inline with
//! `// clan-lint: allow(RULE, reason="…")` (reason mandatory), and a
//! committed per-`(rule, file)` baseline ([`baseline`]) ratchets the
//! count monotonically toward zero. See the crate's `main.rs` for the
//! CLI (`--check`, `--write-baseline`, `--list-rules`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod rules;
pub mod tokenizer;

pub use rules::{lint_source, Violation, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints every in-scope `.rs` file under `root` (a workspace checkout
/// or any tree mirroring its `crates/…` layout), returning findings
/// sorted by path, line, rule.
///
/// # Errors
///
/// Any I/O error walking or reading the tree.
pub fn lint_root(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    let mut out = Vec::new();
    for abs in files {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if !rules::in_any_scope(&rel) {
            continue;
        }
        let src = fs::read_to_string(&abs)?;
        out.extend(rules::lint_source(&rel, &src));
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(out)
}

/// Recursively collects `.rs` files, skipping build output and trees
/// outside any rule's scope anyway (`target/`, fixtures).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
