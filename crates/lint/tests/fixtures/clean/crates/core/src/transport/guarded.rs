//! Fixture: liveness-clean transport code — typed errors, bounds
//! checks, timeout-bearing receive paths. Expected finding count: zero.

pub struct Link {
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
    idle_timeout: std::time::Duration,
}

pub enum LinkError {
    Timeout,
    Closed,
    Truncated,
}

impl Link {
    /// A `recv` is fine when the enclosing fn has a timeout path.
    pub fn recv_frame(&mut self) -> Result<Vec<u8>, LinkError> {
        self.rx
            .recv_timeout(self.idle_timeout)
            .map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => LinkError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => LinkError::Closed,
            })
    }

    /// Bounds-checked parsing: `get` instead of indexing, `?` instead
    /// of unwrap.
    pub fn header(frame: &[u8]) -> Result<u8, LinkError> {
        frame.first().copied().ok_or(LinkError::Truncated)
    }
}

/// `unwrap_or` / `expect_err`-style names must not trip the
/// method-position unwrap matcher.
pub fn not_unwrap(v: Option<u32>) -> u32 {
    v.unwrap_or(0).max(v.unwrap_or_default())
}
