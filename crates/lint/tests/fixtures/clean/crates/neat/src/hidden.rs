//! Fixture: every rule's trigger pattern, hidden where the tokenizer
//! must never look — comments, doc comments, strings, raw strings, char
//! literals — plus properly waived and test-module instances. Expected
//! finding count: zero.
//!
//! Doc comment: HashMap, Instant::now(), .unwrap(), panic!, recv().

// Line comment: HashSet and SystemTime and thread_rng().
/* Block comment: HashMap::new().unwrap() /* nested: panic!("x") */ */

pub fn strings() -> usize {
    let a = "HashMap and .unwrap() and Instant::now()";
    let b = r#"panic!("HashSet") and recv() and .expect("boom")"#;
    let c = "multi
line HashMap
string";
    let d = 'H';
    a.len() + b.len() + c.len() + (d as usize)
}

// clan-lint: allow(D1, reason="fixture: waived lookup-only map")
pub type Waived = std::collections::HashMap<u32, u32>;

pub fn waived_trailing() {
    let _m: std::collections::HashSet<u8> = Default::default(); // clan-lint: allow(D1, reason="fixture: trailing waiver")
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_panic_and_hash() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        if m.is_empty() {
            panic!("impossible");
        }
    }
}
