//! Fixture: one L1 violation (panic path on wire-derived data).

pub fn decode(bytes: Result<Vec<u8>, ()>) -> Vec<u8> {
    bytes.unwrap()
}
