//! Fixture: one D2 violation (ambient wall clock in determinism-bearing
//! code).

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
