//! Fixture: one L2 violation (a `recv` with no timeout-bearing path in
//! the enclosing function).

pub fn pull(rx: &std::sync::mpsc::Receiver<Vec<u8>>) -> Vec<u8> {
    rx.recv().unwrap_or_default()
}
