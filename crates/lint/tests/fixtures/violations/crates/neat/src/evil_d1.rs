//! Fixture: one D1 violation (iteration-order-nondeterministic map in a
//! determinism-bearing crate). The commented/string mentions must stay
//! silent.

// A HashMap in a comment is fine.
use std::collections::HashMap;

pub fn noisy() -> usize {
    let label = "HashMap inside a string literal";
    label.len()
}
