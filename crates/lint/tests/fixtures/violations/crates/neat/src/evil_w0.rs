//! Fixture: one W0 violation (a waiver with no reason silently fails to
//! waive — both the malformed waiver and the violation it meant to
//! cover must be reported).

// clan-lint: allow(D1)
use std::collections::HashSet;
