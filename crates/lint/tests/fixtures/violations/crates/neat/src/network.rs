//! Fixture mirroring the kernel file path: one D3 violation (iterator
//! fold hides the documented FP term order).

pub fn dot(xs: &[f64], ws: &[f64]) -> f64 {
    xs.iter().zip(ws).map(|(x, w)| x * w).sum()
}
