//! End-to-end fixture tests: known-violation snippets must produce
//! exactly the expected `rule:file:line` diagnostics, known-clean
//! snippets must produce none, and the baseline ratchet must fail the
//! check in both drift directions.

use clan_lint::{baseline, lint_root};
use std::path::Path;

fn fixture_root(which: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

/// `rule:path:line` keys for every finding under a fixture root.
fn keys(which: &str) -> Vec<String> {
    lint_root(&fixture_root(which))
        .expect("fixture tree scans")
        .iter()
        .map(|v| format!("{}:{}:{}", v.rule, v.path, v.line))
        .collect()
}

#[test]
fn violations_fixture_reports_exactly_the_injected_findings() {
    let got = keys("violations");
    let want = vec![
        "D2:crates/core/src/evil_d2.rs:5".to_string(),
        "L1:crates/core/src/transport/evil_l1.rs:4".to_string(),
        "L2:crates/core/src/transport/evil_l2.rs:5".to_string(),
        "D1:crates/neat/src/evil_d1.rs:6".to_string(),
        "W0:crates/neat/src/evil_w0.rs:5".to_string(),
        "D1:crates/neat/src/evil_w0.rs:6".to_string(),
        "D3:crates/neat/src/network.rs:5".to_string(),
    ];
    assert_eq!(got, want, "one injected violation per rule, exact lines");
}

#[test]
fn every_rule_fires_in_the_violations_fixture() {
    let got = keys("violations");
    for rule in clan_lint::RULES {
        assert!(
            got.iter().any(|k| k.starts_with(&format!("{rule}:"))),
            "rule {rule} never fired: {got:?}"
        );
    }
}

#[test]
fn clean_fixture_is_silent() {
    assert_eq!(keys("clean"), Vec::<String>::new());
}

#[test]
fn check_fails_against_an_empty_baseline_with_new_drift() {
    let violations = lint_root(&fixture_root("violations")).expect("scan");
    let current = baseline::count(&violations);
    let empty = baseline::parse("").expect("empty baseline parses");
    let drift = baseline::check(&current, &empty);
    assert!(!drift.is_empty());
    assert!(
        drift
            .iter()
            .all(|d| matches!(d, baseline::Drift::New { .. })),
        "all drift vs empty baseline is NEW: {drift:?}"
    );
    // W0 findings exist but are never baselineable.
    assert!(violations.iter().any(|v| v.rule == "W0"));
    assert!(current.keys().all(|(rule, _)| rule != "W0"));
}

#[test]
fn check_fails_on_stale_entries_after_a_fix() {
    let violations = lint_root(&fixture_root("violations")).expect("scan");
    let current = baseline::count(&violations);
    // A baseline recorded when there was one extra L1: the entry is now
    // stale and must fail the check until ratcheted down.
    let mut inflated = current.clone();
    *inflated
        .entry((
            "L1".to_string(),
            "crates/core/src/transport/evil_l1.rs".to_string(),
        ))
        .or_insert(0) += 1;
    let drift = baseline::check(&current, &inflated);
    assert_eq!(drift.len(), 1);
    assert!(matches!(&drift[0], baseline::Drift::Stale { rule, .. } if rule == "L1"));
}

#[test]
fn check_passes_when_baseline_matches_exactly() {
    let violations = lint_root(&fixture_root("violations")).expect("scan");
    let current = baseline::count(&violations);
    let committed = baseline::parse(&baseline::render(&current)).expect("round trip");
    assert!(baseline::check(&current, &committed).is_empty());
}

/// The committed workspace baseline must stay in sync with the tree —
/// the same assertion CI's `lint-contract` job makes, so a drift is
/// caught by `cargo test` locally before it ever reaches CI. Skipped if
/// the workspace root is not where the build put it (e.g. a vendored
/// sub-checkout).
#[test]
fn workspace_scan_matches_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root");
    let committed = root.join("lint-baseline.txt");
    if !committed.exists() {
        return;
    }
    let violations = lint_root(root).expect("workspace scans");
    let current = baseline::count(&violations);
    let base = baseline::parse(&std::fs::read_to_string(&committed).expect("readable"))
        .expect("committed baseline parses");
    let drift = baseline::check(&current, &base);
    assert!(
        drift.is_empty(),
        "workspace drifted from lint-baseline.txt:\n{}",
        drift
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let w0: Vec<_> = violations.iter().filter(|v| v.rule == "W0").collect();
    assert!(w0.is_empty(), "malformed waivers in the tree: {w0:?}");
}
