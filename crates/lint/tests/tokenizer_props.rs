//! Property tests: the tokenizer must never let a hazard pattern inside
//! a string, comment, or doc comment reach the rule matchers — and must
//! always flag the same pattern in code position.

use clan_lint::lint_source;
use proptest::prelude::*;

/// Hazard snippets, one per rule family, that would fire if they
/// appeared in code position in the right scope.
const HAZARDS: [&str; 6] = [
    "HashMap::new()",
    "HashSet::with_capacity(4)",
    "std::time::Instant::now()",
    "value.unwrap()",
    "result.expect(\"boom\")",
    "panic!(\"dead\")",
];

/// Paths covering every scope so each hazard is matched by at least one
/// active rule.
const PATHS: [&str; 3] = [
    "crates/neat/src/population.rs",
    "crates/core/src/driver.rs",
    "crates/core/src/transport/tcp.rs",
];

fn hazard() -> impl Strategy<Value = &'static str> {
    (0usize..HAZARDS.len()).prop_map(|i| HAZARDS[i])
}

fn path() -> impl Strategy<Value = &'static str> {
    (0usize..PATHS.len()).prop_map(|i| PATHS[i])
}

/// Wraps a hazard so it is lexically invisible: comments, doc comments,
/// plain strings, raw strings with varying guards, byte strings.
fn hide(hazard: &str, mode: usize, guards: usize) -> String {
    let h = hazard;
    let g = "#".repeat(guards.clamp(1, 3));
    match mode % 7 {
        0 => format!("// hidden: {h}\n"),
        1 => format!("/// doc hidden: {h}\npub fn documented() {{}}\n"),
        2 => format!("/* block {h} /* nested {h} */ tail */\n"),
        3 => format!("pub fn s() -> usize {{ \"{h}\".len() }}\n"),
        4 => format!("pub fn r() -> usize {{ r{g}\"{h}\"{g}.len() }}\n"),
        5 => format!("pub fn b() -> usize {{ b\"hazard\".len() + \"{h}\".len() }}\n"),
        _ => format!("//! module doc: {h}\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hidden_hazards_never_flag(
        hz in hazard(),
        p in path(),
        mode in 0usize..7,
        guards in 1usize..3,
        salt in 0u32..1000,
    ) {
        // Surround with harmless code so the hazard is not the whole
        // file, and salt an ident so cases differ structurally.
        let src = format!(
            "pub fn ok_{salt}() -> u32 {{ {salt} }}\n{}pub fn tail() {{}}\n",
            hide(hz, mode, guards),
        );
        let findings = lint_source(p, &src);
        prop_assert!(
            findings.is_empty(),
            "hidden hazard {hz:?} flagged via mode {mode} in {p}: {findings:?}"
        );
    }

    #[test]
    fn code_position_hazards_do_flag(
        mode in 0usize..7,
        guards in 1usize..3,
        salt in 0u32..1000,
    ) {
        // The same file plus ONE hazard in real code position: the
        // hidden copies must contribute nothing — exactly one finding.
        let hidden = hide("HashMap::new()", mode, guards);
        let src = format!(
            "pub fn ok_{salt}() -> u32 {{ {salt} }}\n{hidden}\
             pub fn real() {{ let _m = std::collections::HashMap::<u8, u8>::new(); }}\n",
        );
        let findings = lint_source("crates/neat/src/population.rs", &src);
        prop_assert_eq!(
            findings.len(),
            1,
            "exactly the code-position HashMap flags: {:?}",
            findings
        );
        prop_assert_eq!(findings[0].rule, "D1");
    }
}
