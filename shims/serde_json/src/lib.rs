//! Offline stand-in for `serde_json`, rendering and parsing the sibling
//! `serde` shim's [`Value`] tree.
//!
//! The emitted text is standard JSON with two extensions accepted on
//! input (and produced on output only for the corresponding special
//! floats): `NaN`, `Infinity`/`-Infinity`. Floats are written with
//! Rust's shortest round-trip formatting (`{:?}`), so `f64` values
//! survive a save/load cycle bit-exactly.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_nan() {
                out.push_str("NaN");
            } else if f.is_infinite() {
                out.push_str(if *f > 0.0 { "Infinity" } else { "-Infinity" });
            } else {
                // {:?} is Rust's shortest round-trip float format.
                out.push_str(&format!("{f:?}"));
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(_) => self.number(),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| Error::new(format!("bad \\u escape: {e}")))?,
                                16,
                            )
                            .map_err(|e| Error::new(format!("bad \\u escape: {e}")))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("Infinity") {
                return Ok(Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("invalid float `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|e| Error::new(format!("invalid integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("invalid integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-5", "12345", "1.5", "-0.25"] {
            let v = parse(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn float_precision_round_trips() {
        let x = 0.123_456_789_012_345_68_f64;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a":[1,2,{"b":"hi \"there\"\n"}],"c":null}"#;
        let v = parse(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = vec![(1u64, 2u64), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u64, u64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn special_floats_round_trip() {
        let s = to_string(&f64::NAN).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
        let s = to_string(&f64::NEG_INFINITY).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé");
    }
}
