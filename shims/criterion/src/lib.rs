//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::{iter, iter_batched}`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple measurement loop: a short warm-up, then `sample_size`
//! timed samples whose mean ns/iter is printed to stdout.
//!
//! No statistics, plots, or baselines: just enough to keep benchmarks
//! compiling, runnable, and honest about relative cost.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints (accepted, not differentiated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&id.to_string(), self.sample_size, f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, f);
    }

    /// Closes the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Warm-up pass, then timed samples. Iteration counts stay small: the
    // goal is a stable-enough ns/iter on a shared CI box, not rigorous
    // statistics.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20ms per sample, capped to keep total runtime bounded.
    let iters =
        (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {name:<50} {mean_ns:>14.1} ns/iter ({total_iters} iters)");
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
