//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the sibling `serde` shim's `Value`-based model, parsing the
//! item declaration directly from the token stream (no `syn`/`quote`
//! available offline).
//!
//! Supported item shapes — the ones this workspace uses:
//!
//! - named-field structs (with optional per-field
//!   `#[serde(serialize_with = "...", deserialize_with = "...")]`,
//!   `#[serde(skip)]`, `#[serde(rename = "...")]` for wire keys that
//!   are Rust keywords, and `#[serde(default)]` for fields added after
//!   older reports were written)
//! - tuple structs (newtype ids like `GenomeId(pub u64)`)
//! - unit structs
//! - enums with unit, newtype/tuple, and struct variants
//! - generic parameters get a `serde::Serialize`/`serde::Deserialize`
//!   bound appended
//!
//! Encoding: named structs become string-keyed maps; newtype structs are
//! transparent; tuple structs become sequences; unit enum variants
//! become their name as a string; payload variants become
//! single-entry maps `{ "Variant": payload }`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    serialize_with: Option<String>,
    deserialize_with: Option<String>,
    /// `#[serde(skip)]`: omitted when serializing, `Default::default()`
    /// when deserializing (whether or not the field is present).
    skip: bool,
    /// `#[serde(rename = "...")]`: the wire key to use instead of the
    /// field name (e.g. Rust keywords like `async`).
    rename: Option<String>,
    /// `#[serde(default)]`: `Default::default()` when the key is absent
    /// (older serialized reports stay readable after a field is added).
    default: bool,
}

impl Field {
    /// The key this field uses on the wire.
    fn key(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.name)
    }
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Raw generic parameter list (without angle brackets), e.g. `T: Bound`.
    generic_params: Vec<String>,
    /// Bare generic argument names for the `for Name<...>` position.
    generic_args: Vec<String>,
    shape: Shape,
}

impl Item {
    /// `impl<...bounded params...>` fragment, bounding every type
    /// parameter by `extra_bound`.
    fn impl_generics(&self, extra_bound: &str) -> String {
        if self.generic_params.is_empty() {
            return String::new();
        }
        let params: Vec<String> = self
            .generic_params
            .iter()
            .map(|p| {
                if p.starts_with('\'') {
                    p.clone()
                } else if p.contains(':') {
                    format!("{p} + {extra_bound}")
                } else {
                    format!("{p}: {extra_bound}")
                }
            })
            .collect();
        format!("<{}>", params.join(", "))
    }

    /// `Name<...args...>` fragment.
    fn ty(&self) -> String {
        if self.generic_args.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generic_args.join(", "))
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes one `#[...]` attribute if present, returning its content
    /// when it is a `serde(...)` attribute.
    fn eat_attribute(&mut self) -> Option<Option<TokenStream>> {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == '#' {
                self.next(); // '#'
                let group = match self.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    other => panic!("malformed attribute: expected [...], got {other:?}"),
                };
                let mut inner = group.stream().into_iter();
                let is_serde = matches!(
                    inner.next(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                );
                if is_serde {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        return Some(Some(args.stream()));
                    }
                }
                return Some(None);
            }
        }
        None
    }

    /// Consumes attributes, collecting serde attribute contents.
    fn eat_attributes(&mut self) -> Vec<TokenStream> {
        let mut serde_attrs = Vec::new();
        while let Some(attr) = self.eat_attribute() {
            if let Some(content) = attr {
                serde_attrs.push(content);
            }
        }
        serde_attrs
    }

    /// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Parses `<...>` generics into raw params and bare argument names.
    fn eat_generics(&mut self) -> (Vec<String>, Vec<String>) {
        let mut params = Vec::new();
        let mut args = Vec::new();
        let Some(TokenTree::Punct(p)) = self.peek() else {
            return (params, args);
        };
        if p.as_char() != '<' {
            return (params, args);
        }
        self.next(); // '<'
        let mut depth = 1usize;
        let mut current = String::new();
        while depth > 0 {
            let t = self.next().expect("unterminated generics");
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push('<');
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    current.push('>');
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    push_param(&mut params, &mut args, &mut current);
                }
                other => {
                    if !current.is_empty() && !current.ends_with(['<', '\'']) {
                        current.push(' ');
                    }
                    current.push_str(&other.to_string());
                }
            }
        }
        push_param(&mut params, &mut args, &mut current);
        (params, args)
    }
}

fn push_param(params: &mut Vec<String>, args: &mut Vec<String>, current: &mut String) {
    let p = current.trim().to_string();
    if p.is_empty() {
        return;
    }
    let arg = p
        .split([':', ' '])
        .next()
        .expect("split yields at least one piece")
        .to_string();
    args.push(arg);
    params.push(p);
    current.clear();
}

/// Extracts `serialize_with` / `deserialize_with` / `rename` paths and
/// the `skip` / `default` markers from serde attribute contents.
fn parse_field_attrs(
    attrs: &[TokenStream],
) -> (Option<String>, Option<String>, bool, Option<String>, bool) {
    let mut ser = None;
    let mut de = None;
    let mut skip = false;
    let mut rename = None;
    let mut default = false;
    for attr in attrs {
        let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            if let TokenTree::Ident(id) = &tokens[i] {
                let key = id.to_string();
                if key == "skip" {
                    skip = true;
                    i += 1;
                    continue;
                }
                if key == "default" {
                    default = true;
                    i += 1;
                    continue;
                }
                if key == "serialize_with" || key == "deserialize_with" || key == "rename" {
                    // ident '=' "string"
                    let lit = match tokens.get(i + 2) {
                        Some(TokenTree::Literal(l)) => l.to_string(),
                        other => panic!("expected string after {key} =, got {other:?}"),
                    };
                    let path = lit.trim_matches('"').to_string();
                    match key.as_str() {
                        "serialize_with" => ser = Some(path),
                        "deserialize_with" => de = Some(path),
                        _ => rename = Some(path),
                    }
                    i += 3;
                    continue;
                }
            }
            i += 1;
        }
    }
    (ser, de, skip, rename, default)
}

/// Parses named fields from the `{ ... }` group of a struct or variant.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let serde_attrs = cur.eat_attributes();
        cur.eat_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut cur);
        let (serialize_with, deserialize_with, skip, rename, default) =
            parse_field_attrs(&serde_attrs);
        fields.push(Field {
            name,
            serialize_with,
            deserialize_with,
            skip,
            rename,
            default,
        });
    }
    fields
}

/// Skips a type expression up to (and including) the next top-level comma.
fn skip_type(cur: &mut Cursor) {
    let mut angle_depth = 0usize;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                cur.next();
                return;
            }
            _ => {}
        }
        cur.next();
    }
}

/// Counts the fields of a tuple struct / tuple variant `(...)` group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while !cur.at_end() {
        cur.eat_attributes();
        cur.eat_visibility();
        if cur.at_end() {
            break;
        }
        count += 1;
        skip_type(&mut cur);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.eat_attributes();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Struct(fields.into_iter().map(|f| f.name).collect())
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(t) = cur.peek() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    cur.next();
                    break;
                }
            }
            cur.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.eat_attributes();
    cur.eat_visibility();
    let keyword = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    let (generic_params, generic_args) = cur.eat_generics();

    let shape = match keyword.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive target must be struct or enum, got `{other}`"),
    };

    Item {
        name,
        generic_params,
        generic_args,
        shape,
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                let expr = match &f.serialize_with {
                    Some(path) => format!("{path}(&self.{})", f.name),
                    None => format!("serde::Serialize::to_value(&self.{})", f.name),
                };
                pushes.push_str(&format!(
                    "__m.push((\"{n}\".to_string(), {expr}));\n",
                    n = f.key()
                ));
            }
            format!(
                "let mut __m: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}serde::Value::Map(__m)"
            )
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(__x0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {fields} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(vec![{entries}]))]),\n",
                            fields = fields.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{ig} serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}",
        ig = item.impl_generics("serde::Serialize"),
        ty = item.ty()
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let expr = if f.skip {
                    "Default::default()".to_string()
                } else {
                    let from = |value: &str| match &f.deserialize_with {
                        Some(path) => format!("{path}({value})?"),
                        None => format!("serde::Deserialize::from_value({value})?"),
                    };
                    if f.default {
                        format!(
                            "match serde::field(__m, \"{n}\") {{\n\
                                 Ok(__f) => {e},\n\
                                 Err(_) => Default::default(),\n\
                             }}",
                            n = f.key(),
                            e = from("__f")
                        )
                    } else {
                        from(&format!("serde::field(__m, \"{n}\")?", n = f.key()))
                    }
                };
                inits.push_str(&format!("{n}: {expr},\n", n = f.name));
            }
            format!(
                "let __m = __v.as_map().ok_or_else(|| serde::Error::custom(\
                 \"expected map for struct {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| serde::Error::custom(\
                 \"expected sequence for struct {name}\"))?;\n\
                 if __s.len() != {n} {{\n\
                     return Err(serde::Error::custom(\"wrong arity for struct {name}\"));\n\
                 }}\n\
                 Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| serde::Error::custom(\
                                 \"expected sequence payload for {name}::{vn}\"))?;\n\
                                 if __s.len() != {n} {{\n\
                                     return Err(serde::Error::custom(\"wrong arity for {name}::{vn}\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({elems}))\n\
                             }}\n",
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(serde::field(__mm, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __mm = __inner.as_map().ok_or_else(|| serde::Error::custom(\
                                 \"expected map payload for {name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(serde::Error::custom(format!(\
                             \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\
                             __other => Err(serde::Error::custom(format!(\
                                 \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(serde::Error::custom(format!(\
                         \"expected enum {name}, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl{ig} serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}",
        ig = item.impl_generics("serde::Deserialize"),
        ty = item.ty()
    )
}

/// Derives `serde::Serialize` (shim) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}
