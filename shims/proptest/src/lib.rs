//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer-range strategies, `collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: inputs are sampled from a
//! deterministic per-test RNG (seeded from the test name), and failing
//! cases are reported without shrinking. Good enough to exercise the
//! invariants; failures print the offending case's debug representation.

#![forbid(unsafe_code)]

use std::ops::Range;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic RNG driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; tests derive the seed from their name so
    /// every run samples the same cases.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: splitmix64(seed ^ 0x7E57_CA5E_5EED_5EED),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T`: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one sampled case: `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

/// Derives a stable seed from a test's name.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {a:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_one!($config; $(#[$meta])* fn $name($($arg in $strategy),*) $body);
        )*
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_one!(
                $crate::ProptestConfig::default();
                $(#[$meta])* fn $name($($arg in $strategy),*) $body
            );
        )*
    };
}

/// Internal: expands one property into a `#[test]` function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),*) $body:block) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_of(stringify!($name)));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&$strategy, &mut rng);
                )*
                let case_input = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)* ""),
                    $(&$arg),*
                );
                let outcome: $crate::CaseResult = (|| {
                    $(
                        // Rebind so the closure takes ownership per case.
                        let $arg = $arg;
                    )*
                    $body
                    Ok(())
                })();
                if let Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}:\n  {msg}\n  inputs: {case_input}",
                        stringify!($name),
                        config.cases
                    );
                }
            }
        }
    };
}
