//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the API surface it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`), and
//! [`seq::IteratorRandom::choose`].
//!
//! Determinism is the only contract: the same seed produces the same
//! stream on every platform and every run. The stream is **not** the same
//! as upstream `rand`'s `StdRng` (ChaCha12); all seeded expectations in
//! this repository are self-consistent against this implementation.
//!
//! The generator is a splitmix64 counter (Steele et al., "Fast
//! Splittable Pseudorandom Number Generators"), which passes BigCrush in
//! its 64-bit output and is more than adequate for evolutionary search.

#![forbid(unsafe_code)]

use std::ops::Range;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `gen_range` endpoints.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo reduction; span is tiny relative to 2^64 in all
                // workspace uses, so the bias is negligible (and the only
                // contract is determinism).
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u8, i64, i32);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Random-number generator interface (the subset this workspace uses).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (`f64` in `[0,1)`, `bool`, `u32`,
    /// `u64`, `u128`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: a splitmix64
    /// counter. Same seed ⇒ same stream, on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // Counter-mode splitmix64: increment, then mix.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds start in unrelated regions of the
            // counter sequence.
            StdRng {
                state: splitmix64(seed ^ 0x5DEE_CE66_D5A7_F9CA),
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Iterator extension: uniformly choose one element.
    pub trait IteratorRandom: Iterator + Sized {
        /// Reservoir-samples a single element, consuming one `gen_range`
        /// per element past the first. Deterministic given the RNG state.
        fn choose<R: Rng + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
            let mut chosen = None;
            for (i, item) in self.enumerate() {
                if i == 0 || rng.gen_range(0..i + 1) == 0 {
                    chosen = Some(item);
                }
            }
            chosen
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::IteratorRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(6);
        let mut counts = [0u32; 5];
        for _ in 0..5000 {
            let x = (0..5).choose(&mut r).unwrap();
            counts[x] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = StdRng::seed_from_u64(7);
        assert_eq!(std::iter::empty::<u8>().choose(&mut r), None);
    }

    #[test]
    fn bool_and_wide_ints_sample() {
        let mut r = StdRng::seed_from_u64(8);
        let _: bool = r.gen();
        let _: u32 = r.gen();
        let a: u128 = r.gen();
        let b: u128 = r.gen();
        assert_ne!(a, b);
    }
}
