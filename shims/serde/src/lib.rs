//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a small serialization framework with serde-compatible surface
//! syntax: `#[derive(Serialize, Deserialize)]`, field attributes
//! `#[serde(serialize_with = "...", deserialize_with = "...")]`, and a
//! `serde_json`-shaped companion crate.
//!
//! Unlike real serde's visitor architecture, this implementation routes
//! everything through one dynamic [`Value`] tree:
//!
//! - [`Serialize`] renders `Self` into a [`Value`];
//! - [`Deserialize`] parses `Self` back out of a [`Value`];
//! - `serde_json` (sibling shim) converts [`Value`] to and from JSON
//!   text.
//!
//! `serialize_with` functions take `&T -> Value`; `deserialize_with`
//! functions take `&Value -> Result<T, Error>`. Maps with non-string keys
//! serialize as sequences of `[key, value]` pairs, so arbitrary `Ord`
//! keys round-trip through JSON.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Dynamically typed serialization tree (the JSON data model, plus a
/// signed/unsigned integer split to round-trip `u64`/`i64` losslessly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used when negative).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// String-keyed map, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `Self` into a [`Value`].
pub trait Serialize {
    /// Converts to the dynamic tree.
    fn to_value(&self) -> Value;
}

/// Parses `Self` out of a [`Value`].
pub trait Deserialize: Sized {
    /// Converts from the dynamic tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape or range does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a required struct field in a map value (derive support).
///
/// # Errors
///
/// Returns [`Error`] when the field is absent.
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

/// Maps serialize as sequences of `[key, value]` pairs so non-string
/// keys survive the trip through JSON (whose object keys must be
/// strings).
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

fn int_of(v: &Value) -> Result<i128, Error> {
    match v {
        Value::Int(i) => Ok(i128::from(*i)),
        Value::UInt(u) => Ok(i128::from(*u)),
        Value::Float(f) if f.fract() == 0.0 => Ok(*f as i128),
        other => Err(Error::custom(format!(
            "expected integer, got {}",
            other.kind()
        ))),
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = int_of(v)?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

fn tuple_elems(v: &Value, n: usize) -> Result<&[Value], Error> {
    let s = v
        .as_seq()
        .ok_or_else(|| Error::custom(format!("expected {n}-tuple, got {}", v.kind())))?;
    if s.len() != n {
        return Err(Error::custom(format!(
            "expected {n}-tuple, got {} elements",
            s.len()
        )));
    }
    Ok(s)
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = tuple_elems(v, 2)?;
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = tuple_elems(v, 3)?;
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected pair sequence, got {}", v.kind())))?
            .iter()
            .map(<(K, V)>::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u64>::from_value(&None::<u64>.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert((-1i64, 2i64), 0.5f64);
        assert_eq!(
            BTreeMap::<(i64, i64), f64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::UInt(900)).is_err());
        assert!(<(u64, u64)>::from_value(&Value::Seq(vec![Value::UInt(1)])).is_err());
    }
}
